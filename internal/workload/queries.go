package workload

import (
	"math"

	"segidx/internal/geom"
)

// QueryArea is the fixed area of every search rectangle (Section 5:
// "a query rectangle of area 1,000,000").
const QueryArea = 1e6

// QARs lists the paper's query aspect ratios in presentation order.
func QARs() []float64 {
	return []float64{0.0001, 0.001, 0.01, 0.1, 0.2, 0.5, 1, 2, 5, 10, 100, 1000, 10000}
}

// QueriesPerQAR is the paper's sample size: "For each QAR, 100 search
// rectangles were generated".
const QueriesPerQAR = 100

// Query builds one search rectangle of area QueryArea with the given
// horizontal-to-vertical aspect ratio, centered at (cx, cy). The rectangle
// may extend beyond the domain, as in the paper ("randomly centered over
// the domain").
func Query(cx, cy, qar float64) geom.Rect {
	w := math.Sqrt(QueryArea * qar)
	h := math.Sqrt(QueryArea / qar)
	return geom.Rect2(cx-w/2, cy-h/2, cx+w/2, cy+h/2)
}

// Queries generates count query rectangles with the given QAR, centroids
// uniform over the domain, deterministically for the seed.
func Queries(qar float64, count int, seed uint64) []geom.Rect {
	rng := NewRNG(seed ^ math.Float64bits(qar))
	out := make([]geom.Rect, count)
	for i := range out {
		out[i] = Query(rng.Uniform(DomainLo, DomainHi), rng.Uniform(DomainLo, DomainHi), qar)
	}
	return out
}

// TIRecentFraction is the share of TI stab times drawn near the frontier,
// and TIRecentWindow the width of that frontier band as a fraction of the
// domain: temporal workloads overwhelmingly ask "what is valid now?" with
// an occasional time-travel query into history.
const (
	TIRecentFraction = 0.8
	TIRecentWindow   = 0.05
)

// TIStabTimes generates count stab timestamps for the TI temporal
// workload, deterministically for the seed. now is the current frontier
// (the largest ending time committed so far, clamped to the domain);
// TIRecentFraction of the draws land in the trailing TIRecentWindow band
// below it and the rest are uniform time-travel points over [DomainLo,
// now].
func TIStabTimes(now float64, count int, seed uint64) []float64 {
	if now > DomainHi {
		now = DomainHi
	}
	if now < DomainLo {
		now = DomainLo
	}
	recent := now - (DomainHi-DomainLo)*TIRecentWindow
	if recent < DomainLo {
		recent = DomainLo
	}
	rng := NewRNG(seed ^ math.Float64bits(now))
	out := make([]float64, count)
	for i := range out {
		if rng.Float64() < TIRecentFraction {
			out[i] = rng.Uniform(recent, now)
		} else {
			out[i] = rng.Uniform(DomainLo, now)
		}
	}
	return out
}
