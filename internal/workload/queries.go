package workload

import (
	"math"

	"segidx/internal/geom"
)

// QueryArea is the fixed area of every search rectangle (Section 5:
// "a query rectangle of area 1,000,000").
const QueryArea = 1e6

// QARs lists the paper's query aspect ratios in presentation order.
func QARs() []float64 {
	return []float64{0.0001, 0.001, 0.01, 0.1, 0.2, 0.5, 1, 2, 5, 10, 100, 1000, 10000}
}

// QueriesPerQAR is the paper's sample size: "For each QAR, 100 search
// rectangles were generated".
const QueriesPerQAR = 100

// Query builds one search rectangle of area QueryArea with the given
// horizontal-to-vertical aspect ratio, centered at (cx, cy). The rectangle
// may extend beyond the domain, as in the paper ("randomly centered over
// the domain").
func Query(cx, cy, qar float64) geom.Rect {
	w := math.Sqrt(QueryArea * qar)
	h := math.Sqrt(QueryArea / qar)
	return geom.Rect2(cx-w/2, cy-h/2, cx+w/2, cy+h/2)
}

// Queries generates count query rectangles with the given QAR, centroids
// uniform over the domain, deterministically for the seed.
func Queries(qar float64, count int, seed uint64) []geom.Rect {
	rng := NewRNG(seed ^ math.Float64bits(qar))
	out := make([]geom.Rect, count)
	for i := range out {
		out[i] = Query(rng.Uniform(DomainLo, DomainHi), rng.Uniform(DomainLo, DomainHi), qar)
	}
	return out
}
