package segidx_test

import (
	"testing"

	"segidx"
	"segidx/internal/workload"
)

func TestBulkLoadRTreePublic(t *testing.T) {
	data := workload.R1.Generate(5000, 77)
	recs := make([]segidx.BulkRecord, len(data))
	for i, r := range data {
		recs[i] = segidx.BulkRecord{Rect: r, ID: segidx.RecordID(i + 1)}
	}
	idx, err := segidx.BulkLoadRTree(recs, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	if idx.Kind() != "packed-r-tree" {
		t.Errorf("Kind = %q", idx.Kind())
	}
	if idx.Len() != 5000 {
		t.Fatalf("Len = %d", idx.Len())
	}
	if err := idx.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Queries agree with a brute-force scan.
	for _, q := range workload.Queries(1, 50, 78) {
		want := 0
		for _, r := range data {
			if r.Intersects(q) {
				want++
			}
		}
		got, err := idx.Count(q)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("count %d, want %d", got, want)
		}
	}
	// The packed tree remains fully dynamic.
	if err := idx.Insert(segidx.Point(5, 5), 99999); err != nil {
		t.Fatal(err)
	}
	if n, err := idx.Delete(1, data[0]); err != nil || n != 1 {
		t.Fatalf("delete on packed tree: %d, %v", n, err)
	}
	if err := idx.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBulkLoadValidation(t *testing.T) {
	if _, err := segidx.BulkLoadRTree(nil, 0); err == nil {
		t.Error("fill 0 accepted")
	}
	if _, err := segidx.BulkLoadRTree(nil, 1.0, segidx.WithDims(0)); err == nil {
		t.Error("bad option accepted")
	}
}

func TestStab(t *testing.T) {
	idx, err := segidx.NewSRTree()
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	if err := idx.Insert(segidx.Interval(10, 20, 5), 1); err != nil {
		t.Fatal(err)
	}
	if err := idx.Insert(segidx.Interval(15, 30, 5), 2); err != nil {
		t.Fatal(err)
	}
	if err := idx.Insert(segidx.Interval(40, 50, 5), 3); err != nil {
		t.Fatal(err)
	}
	hits, err := idx.Stab(17, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 2 {
		t.Fatalf("Stab(17, 5) = %d records, want 2", len(hits))
	}
	hits, err = idx.Stab(17, 6) // wrong Y
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 0 {
		t.Fatalf("Stab at empty point found %d", len(hits))
	}
}
