package segidx

import (
	"fmt"

	"segidx/internal/accel"
	"segidx/internal/core"
	"segidx/internal/store"
)

// Option customizes index construction.
type Option func(*options) error

type options struct {
	cfg         core.Config
	st          store.Store
	path        string
	durable     bool
	par         int
	shards      int
	shardBudget int

	// Stab-accelerator sidecar configuration; accelOn gates attachment.
	accelOn        bool
	accelDim       int
	accelLevels    int
	accelLo        float64
	accelHi        float64
	accelDomainSet bool
	accelMode      accel.Mode
}

func resolve(opts []Option) (*options, error) {
	o := &options{cfg: core.DefaultConfig()}
	// Paper defaults for skeleton adaptation; active only on skeleton
	// indexes (dynamic constructors disable coalescing).
	o.cfg.CoalesceEvery = 1000
	o.cfg.CoalesceCandidates = 10
	for _, opt := range opts {
		if opt == nil {
			continue
		}
		if err := opt(o); err != nil {
			return nil, err
		}
	}
	if o.st != nil && o.path != "" {
		return nil, fmt.Errorf("segidx: WithStore and WithFile are mutually exclusive")
	}
	if o.st != nil && o.shards > 1 {
		// A sharded index needs one independent store per shard; a single
		// caller-provided store cannot host a forest.
		return nil, fmt.Errorf("segidx: WithStore and WithShards are mutually exclusive")
	}
	return o, nil
}

// openStore returns the configured page store and whether the index owns
// (and must close) it.
func (o *options) openStore() (store.Store, bool, error) {
	if o.st != nil {
		return o.st, false, nil
	}
	if o.path != "" {
		if o.durable {
			ws, err := store.OpenWALStore(o.path)
			if err != nil {
				return nil, false, err
			}
			return ws, true, nil
		}
		fs, err := store.OpenFileStore(o.path)
		if err != nil {
			return nil, false, err
		}
		return fs, true, nil
	}
	return store.NewMemStore(), true, nil
}

// WithDims sets the dimensionality K of the indexed rectangles
// (default 2, the paper's experimental setting; 1 through 8 supported).
func WithDims(k int) Option {
	return func(o *options) error {
		o.cfg.Dims = k
		return nil
	}
}

// WithLeafNodeBytes sets the page size of leaf nodes (default 1024, the
// paper's setting).
func WithLeafNodeBytes(n int) Option {
	return func(o *options) error {
		o.cfg.Sizes.LeafBytes = n
		return nil
	}
}

// WithNodeGrowth sets the per-level page size multiplier (default 2: node
// size doubles at each higher level, the paper's tactic 2; 1 keeps all
// nodes the same size).
func WithNodeGrowth(g int) Option {
	return func(o *options) error {
		o.cfg.Sizes.Growth = g
		return nil
	}
}

// WithBranchReserve sets the fraction of non-leaf payload reserved for
// branches on SR-Trees (default 2/3, the paper's setting; the remainder
// holds spanning index records).
func WithBranchReserve(f float64) Option {
	return func(o *options) error {
		o.cfg.BranchReserve = f
		return nil
	}
}

// WithMinFill sets the minimum node occupancy fraction enforced by splits
// and deletion (default 0.4).
func WithMinFill(f float64) Option {
	return func(o *options) error {
		o.cfg.MinFillFrac = f
		return nil
	}
}

// WithQuadraticSplit selects Guttman's quadratic split (the default and
// the paper's algorithm).
func WithQuadraticSplit() Option {
	return func(o *options) error {
		o.cfg.Split = core.SplitQuadratic
		return nil
	}
}

// WithLinearSplit selects Guttman's linear-cost split.
func WithLinearSplit() Option {
	return func(o *options) error {
		o.cfg.Split = core.SplitLinear
		return nil
	}
}

// WithLeafPromotion controls whether leaf records spanning a post-split
// leaf are promoted to the parent (default true; see DESIGN.md, ablation
// A5).
func WithLeafPromotion(enabled bool) Option {
	return func(o *options) error {
		o.cfg.LeafPromotion = enabled
		return nil
	}
}

// WithCoalescing tunes skeleton-index coalescing: scan for mergeable
// sibling leaves after every `every` insertions among the `candidates`
// least-frequently-modified leaves (paper: 1000 and 10). every == 0
// disables coalescing. Only skeleton indexes coalesce.
func WithCoalescing(every, candidates int) Option {
	return func(o *options) error {
		o.cfg.CoalesceEvery = every
		o.cfg.CoalesceCandidates = candidates
		return nil
	}
}

// WithPoolBytes caps buffer pool residency in bytes (default 0 =
// unlimited).
func WithPoolBytes(n int) Option {
	return func(o *options) error {
		o.cfg.PoolBytes = n
		return nil
	}
}

// WithPoolShards sets the buffer pool's lock-stripe count (rounded up to
// a power of two; default 0 picks a count scaled to GOMAXPROCS). One
// shard gives a single global LRU with an exact byte budget; more shards
// let concurrent readers pin pages without contending on one mutex.
func WithPoolShards(n int) Option {
	return func(o *options) error {
		if n < 0 {
			return fmt.Errorf("segidx: negative pool shard count %d", n)
		}
		o.cfg.PoolShards = n
		return nil
	}
}

// WithParallelism bounds the worker goroutines used by the batch APIs
// (SearchBatch, StabBatch, InsertBatch). The default 0 means GOMAXPROCS
// at call time; SetParallelism changes the bound later.
func WithParallelism(n int) Option {
	return func(o *options) error {
		if n < 0 {
			return fmt.Errorf("segidx: negative parallelism %d", n)
		}
		o.par = n
		return nil
	}
}

// WithShards partitions the index into n independent trees ("shards")
// behind the same Index facade. Each shard has its own page store,
// write-ahead log (with WithDurableFile), buffer-pool budget, and write
// lock, so writers routed to distinct shards proceed in parallel; queries
// scatter across the shards whose bounding covers overlap the query and
// gather the results. Records are assigned to shards by hashing the
// rectangle center (see (*Index).ShardOf); re-inserting under a live ID
// stays on the ID's home shard, preserving single-tree dedup and delete
// semantics.
//
// With WithFile or WithDurableFile, path holds the forest manifest and
// shard i's pages live at path.shard<i> (plus a ".wal" sibling per shard
// when durable); Open and OpenDurable detect the manifest and reassemble
// the forest. n <= 1 builds a regular single tree. Incompatible with
// WithStore.
func WithShards(n int) Option {
	return func(o *options) error {
		if n < 0 {
			return fmt.Errorf("segidx: negative shard count %d", n)
		}
		o.shards = n
		return nil
	}
}

// WithShardBudget caps each shard's buffer pool at n bytes. Without it, a
// WithPoolBytes budget is divided evenly across the shards (so sharding
// does not multiply memory); with neither, shards are unbounded.
func WithShardBudget(n int) Option {
	return func(o *options) error {
		if n < 0 {
			return fmt.Errorf("segidx: negative shard budget %d", n)
		}
		o.shardBudget = n
		return nil
	}
}

// Default hot-dimension domain for WithStabAccel when neither
// WithStabAccelDomain nor a skeleton estimate supplies one. Matches the
// benchmark workload domain; out-of-domain values clamp to the edge cells
// of the accelerator (exact answers, degraded balance).
const (
	defaultAccelLo = 0
	defaultAccelHi = 100000
)

// WithStabAccel attaches a HINT-style hierarchical stab accelerator as a
// sidecar over the given hot dimension: a main-memory index partitioning
// that dimension's domain into 2^levels cells (levels in [1, 16]; 10–12
// suits ~100k-value domains) that answers stabbing and narrow
// intersection queries without touching tree pages. The sidecar is kept
// epoch-consistent with the tree's MVCC commits, so snapshot reads see
// matching answers; each shard of a forest gets its own sidecar. Queries
// route between tree and sidecar through an adaptive cost gate — see
// WithHybridMode. The hot-dimension domain defaults to the skeleton
// estimate's domain when one is given, else [0, 100000]; override with
// WithStabAccelDomain. Values outside the domain stay exact but crowd the
// edge cells.
//
// Queries answered by the sidecar report each record's full original
// rectangle, where the bare tree may report a cut record's narrower
// intersecting-portion union; record ID sets are always identical.
// Contents the sidecar cannot represent exactly (duplicate record IDs,
// reopened pre-cut records) permanently degrade it to a dormant
// pass-through — every query then runs on the tree.
func WithStabAccel(dim, levels int) Option {
	return func(o *options) error {
		if dim < 0 {
			return fmt.Errorf("segidx: negative accelerator dimension %d", dim)
		}
		if levels < 1 || levels > 16 {
			return fmt.Errorf("segidx: accelerator levels %d outside [1, 16]", levels)
		}
		o.accelOn = true
		o.accelDim = dim
		o.accelLevels = levels
		return nil
	}
}

// WithStabAccelDomain sets the hot-dimension domain [lo, hi) the stab
// accelerator partitions. Only meaningful with WithStabAccel.
func WithStabAccelDomain(lo, hi float64) Option {
	return func(o *options) error {
		if !(lo < hi) {
			return fmt.Errorf("segidx: empty accelerator domain [%g, %g]", lo, hi)
		}
		o.accelLo = lo
		o.accelHi = hi
		o.accelDomainSet = true
		return nil
	}
}

// WithHybridMode sets the stab accelerator's routing policy: HybridAuto
// (default) lets the adaptive cost gate pick tree or sidecar per query
// from observed latencies, HybridAlways routes every eligible query to
// the sidecar, HybridOff keeps the sidecar maintained but unused. Only
// meaningful with WithStabAccel.
func WithHybridMode(m HybridMode) Option {
	return func(o *options) error {
		if m != HybridAuto && m != HybridAlways && m != HybridOff {
			return fmt.Errorf("segidx: unknown hybrid mode %d", int32(m))
		}
		o.accelMode = m
		return nil
	}
}

// newStabAccel builds the configured accelerator for an index of the
// given dimensionality (nil when none was requested). est, when non-nil
// and the caller set no explicit domain, supplies the hot-dimension
// bounds.
func (o *options) newStabAccel(dims int, est *SkeletonEstimate) (*accel.Accel, error) {
	if !o.accelOn {
		return nil, nil
	}
	lo, hi := o.accelLo, o.accelHi
	if !o.accelDomainSet {
		lo, hi = defaultAccelLo, defaultAccelHi
		if est != nil && est.Domain.Valid() && est.Domain.Dims() > o.accelDim &&
			est.Domain.Min[o.accelDim] < est.Domain.Max[o.accelDim] {
			lo, hi = est.Domain.Min[o.accelDim], est.Domain.Max[o.accelDim]
		}
	}
	return accel.New(accel.Config{
		Dims:   dims,
		Dim:    o.accelDim,
		Levels: o.accelLevels,
		Lo:     lo,
		Hi:     hi,
		Mode:   o.accelMode,
	})
}

// attachStabAccel builds and attaches the configured accelerator to one
// tree (a no-op without WithStabAccel).
func (o *options) attachStabAccel(t *core.Tree, est *SkeletonEstimate) error {
	a, err := o.newStabAccel(t.Config().Dims, est)
	if err != nil || a == nil {
		return err
	}
	return t.AttachStabAccel(a)
}

// WithFile stores index pages in a single file at path. The index owns the
// file handle; Close releases it.
func WithFile(path string) Option {
	return func(o *options) error {
		if path == "" {
			return fmt.Errorf("segidx: empty file path")
		}
		o.path = path
		return nil
	}
}

// WithDurableFile stores index pages in a single file at path behind a
// write-ahead log (a sibling file with a ".wal" suffix). Flush becomes a
// crash-atomic commit: after a crash at any point, reopening with
// OpenDurable recovers the state of the last completed Flush — never a
// torn hybrid. Each Flush costs an fsync of the log and of the page file;
// see EXPERIMENTS.md for the measured overhead.
func WithDurableFile(path string) Option {
	return func(o *options) error {
		if path == "" {
			return fmt.Errorf("segidx: empty file path")
		}
		o.path = path
		o.durable = true
		return nil
	}
}

// WithStore uses a caller-provided page store. The caller keeps ownership:
// Close does not close it. Intended for tests and custom backends.
func WithStore(st store.Store) Option {
	return func(o *options) error {
		if st == nil {
			return fmt.Errorf("segidx: nil store")
		}
		o.st = st
		return nil
	}
}
