package segidx

import (
	"context"
	"runtime"

	"segidx/internal/fanout"
)

// Parallelism reports the worker bound the batch APIs use: the value set
// by WithParallelism or SetParallelism, or GOMAXPROCS when unset.
func (x *Index) Parallelism() int {
	if n := x.par.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// SetParallelism changes the worker bound for subsequent batch calls
// (0 restores the GOMAXPROCS default). On a sharded index the bound also
// governs scatter-gather queries and multi-shard flushes. Safe to call
// concurrently; operations already in flight keep the bound they started
// with.
func (x *Index) SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	x.par.Store(int32(n))
	if f := x.asForest(); f != nil {
		f.SetParallelism(n)
	}
}

// SearchBatch runs Search for every query concurrently, with at most
// Parallelism() goroutines, and returns the results in query order:
// results[i] holds the records intersecting queries[i], deduplicated by
// ID, exactly as a sequential Search(queries[i]) would return them.
//
// Workers draw per-query contexts (traversal stack, pin cache, dedup
// set, result arena) from the tree's shared pool, so a batch of N
// workers settles on N recycled contexts: steady-state batch queries
// allocate only the returned result slices.
//
// The whole batch rides one MVCC snapshot: every query observes the same
// commit boundary regardless of writer activity during the batch, and no
// query blocks behind a writer.
//
// The first error stops the batch and is returned; a canceled context
// returns ctx.Err(). On error the partial results are discarded. A nil
// ctx is treated as context.Background().
func (x *Index) SearchBatch(ctx context.Context, queries []Rect) ([][]Entry, error) {
	v := x.eng.Snapshot()
	defer v.Release()
	results := make([][]Entry, len(queries))
	err := x.runBatch(ctx, len(queries), func(i int) error {
		out, err := v.Search(queries[i])
		if err != nil {
			return err
		}
		results[i] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// StabBatch runs Stab for every point concurrently (see SearchBatch for
// ordering, parallelism, snapshot, and error semantics). Each point is a
// coordinate slice of the index's dimensionality.
func (x *Index) StabBatch(ctx context.Context, points [][]float64) ([][]Entry, error) {
	v := x.eng.Snapshot()
	defer v.Release()
	results := make([][]Entry, len(points))
	err := x.runBatch(ctx, len(points), func(i int) error {
		out, err := v.SearchContaining(Point(points[i]...))
		if err != nil {
			return err
		}
		results[i] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// InsertBatch inserts every record through a pool of at most
// Parallelism() workers. Inserts serialize internally behind the index's
// write lock, so the pool bounds goroutines rather than promising linear
// speedup; it exists so producers can hand over a slab of records and
// overlap their own work with the index build.
//
// The first error cancels the remaining work and is returned. Records
// already handed to workers when the error occurred may or may not have
// been inserted — on error, callers that need exactness should rebuild or
// reconcile via Search. A nil ctx is treated as context.Background().
func (x *Index) InsertBatch(ctx context.Context, records []BulkRecord) error {
	return x.runBatch(ctx, len(records), func(i int) error {
		return x.eng.Insert(records[i].Rect, records[i].ID)
	})
}

// runBatch executes fn(0..n-1) across a bounded worker pool (see
// fanout.Run), returning the first error (worker or context). Indexes are
// claimed from an atomic cursor so completion order is irrelevant to
// callers that write results into index i of a pre-sized slice.
func (x *Index) runBatch(ctx context.Context, n int, fn func(i int) error) error {
	return fanout.Run(ctx, x.Parallelism(), n, fn)
}
