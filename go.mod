module segidx

go 1.22
