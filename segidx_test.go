package segidx_test

import (
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"testing"

	"segidx"
	"segidx/internal/page"
	"segidx/internal/workload"
)

// pageID aliases the page identifier for the nopStore stub below.
type pageID = page.ID

// constructors returns one of each index type, sized for quick tests.
func constructors(tuples int) map[string]func() (*segidx.Index, error) {
	est := segidx.SkeletonEstimate{
		Tuples: tuples,
		Domain: segidx.Box(0, 0, workload.DomainHi, workload.DomainHi),
	}
	pred := est
	pred.PredictFraction = 0.05
	return map[string]func() (*segidx.Index, error){
		"r-tree":           func() (*segidx.Index, error) { return segidx.NewRTree() },
		"sr-tree":          func() (*segidx.Index, error) { return segidx.NewSRTree() },
		"skeleton-r-tree":  func() (*segidx.Index, error) { return segidx.NewSkeletonRTree(est) },
		"skeleton-sr-tree": func() (*segidx.Index, error) { return segidx.NewSkeletonSRTree(pred) },
	}
}

func TestAllIndexTypesAgree(t *testing.T) {
	const n = 3000
	data := workload.I3.Generate(n, 1234)
	queries := workload.Queries(1, 50, 55)
	queries = append(queries, workload.Queries(0.01, 50, 56)...)
	queries = append(queries, workload.Queries(100, 50, 57)...)

	// Reference answer from a brute-force scan.
	reference := make([][]segidx.RecordID, len(queries))
	for qi, q := range queries {
		for i, r := range data {
			if r.Intersects(q) {
				reference[qi] = append(reference[qi], segidx.RecordID(i+1))
			}
		}
	}

	for name, mk := range constructors(n) {
		t.Run(name, func(t *testing.T) {
			idx, err := mk()
			if err != nil {
				t.Fatal(err)
			}
			defer idx.Close()
			if idx.Kind() != name {
				t.Errorf("Kind = %q, want %q", idx.Kind(), name)
			}
			for i, r := range data {
				if err := idx.Insert(r, segidx.RecordID(i+1)); err != nil {
					t.Fatalf("insert %d: %v", i, err)
				}
			}
			if idx.Len() != n {
				t.Fatalf("Len = %d", idx.Len())
			}
			if err := idx.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			for qi, q := range queries {
				got, err := idx.Search(q)
				if err != nil {
					t.Fatal(err)
				}
				ids := make([]segidx.RecordID, 0, len(got))
				for _, e := range got {
					ids = append(ids, e.ID)
				}
				sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
				want := reference[qi]
				if len(ids) != len(want) {
					t.Fatalf("query %d: got %d results, want %d", qi, len(ids), len(want))
				}
				for i := range ids {
					if ids[i] != want[i] {
						t.Fatalf("query %d: result %d is %d, want %d", qi, i, ids[i], want[i])
					}
				}
			}
		})
	}
}

func TestPublicPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "idx.db")
	idx, err := segidx.NewSRTree(segidx.WithFile(path))
	if err != nil {
		t.Fatal(err)
	}
	data := workload.I1.Generate(500, 9)
	for i, r := range data {
		if err := idx.Insert(r, segidx.RecordID(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := idx.Close(); err != nil {
		t.Fatal(err)
	}

	idx2, err := segidx.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer idx2.Close()
	if idx2.Kind() != "sr-tree" {
		t.Errorf("reopened kind = %q", idx2.Kind())
	}
	if idx2.Len() != 500 {
		t.Fatalf("reopened Len = %d", idx2.Len())
	}
	n, err := idx2.Count(segidx.Box(0, 0, workload.DomainHi, workload.DomainHi))
	if err != nil || n != 500 {
		t.Fatalf("Count = %d, %v", n, err)
	}
	if err := idx2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPublicDurablePersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "idx.db")
	idx, err := segidx.NewSRTree(segidx.WithDurableFile(path))
	if err != nil {
		t.Fatal(err)
	}
	data := workload.I1.Generate(500, 9)
	for i, r := range data {
		if err := idx.Insert(r, segidx.RecordID(i+1)); err != nil {
			t.Fatal(err)
		}
		if (i+1)%100 == 0 {
			if err := idx.Flush(); err != nil {
				t.Fatalf("Flush at %d: %v", i+1, err)
			}
		}
	}
	if err := idx.Close(); err != nil {
		t.Fatal(err)
	}

	idx2, err := segidx.OpenDurable(path)
	if err != nil {
		t.Fatal(err)
	}
	defer idx2.Close()
	if idx2.Kind() != "sr-tree" {
		t.Errorf("reopened kind = %q", idx2.Kind())
	}
	if idx2.Len() != 500 {
		t.Fatalf("reopened Len = %d", idx2.Len())
	}
	n, err := idx2.Count(segidx.Box(0, 0, workload.DomainHi, workload.DomainHi))
	if err != nil || n != 500 {
		t.Fatalf("Count = %d, %v", n, err)
	}
	if err := idx2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenMissingFileMeta(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.db")
	// Create an empty file store with no index in it.
	idx, err := segidx.NewRTree(segidx.WithFile(path))
	_ = idx
	if err != nil {
		t.Fatal(err)
	}
	// Do not flush; close the store behind the index's back by opening a
	// brand new path instead.
	fresh := filepath.Join(t.TempDir(), "missing.db")
	if _, err := segidx.Open(fresh); !errors.Is(err, segidx.ErrNoMeta) {
		t.Fatalf("Open(fresh) = %v, want ErrNoMeta", err)
	}
}

func TestOptionValidation(t *testing.T) {
	if _, err := segidx.NewRTree(segidx.WithDims(0)); err == nil {
		t.Error("dims 0 accepted")
	}
	if _, err := segidx.NewSRTree(segidx.WithBranchReserve(2)); err == nil {
		t.Error("branch reserve 2 accepted")
	}
	if _, err := segidx.NewRTree(segidx.WithFile("")); err == nil {
		t.Error("empty path accepted")
	}
	if _, err := segidx.NewRTree(segidx.WithStore(nil)); err == nil {
		t.Error("nil store accepted")
	}
	if _, err := segidx.NewSkeletonRTree(segidx.SkeletonEstimate{Tuples: 0}); err == nil {
		t.Error("empty estimate accepted")
	}
	// Mutually exclusive store options.
	if _, err := segidx.NewRTree(segidx.WithFile("/tmp/x.db"), segidx.WithStore(nopStore{})); err == nil {
		t.Error("WithFile + WithStore accepted")
	}
}

// nopStore satisfies store.Store minimally for the option-conflict test.
type nopStore struct{}

func (nopStore) Allocate(int) (pageID, error) { return 0, fmt.Errorf("nop") }
func (nopStore) Write(pageID, []byte) error   { return fmt.Errorf("nop") }
func (nopStore) Read(pageID) ([]byte, error)  { return nil, fmt.Errorf("nop") }
func (nopStore) Free(pageID) error            { return fmt.Errorf("nop") }
func (nopStore) PageSize(pageID) (int, error) { return 0, fmt.Errorf("nop") }
func (nopStore) Len() int                     { return 0 }
func (nopStore) Close() error                 { return nil }

func TestDimensionsOtherThanTwo(t *testing.T) {
	for _, k := range []int{1, 3} {
		t.Run(fmt.Sprintf("K=%d", k), func(t *testing.T) {
			idx, err := segidx.NewSRTree(segidx.WithDims(k), segidx.WithLeafNodeBytes(512))
			if err != nil {
				t.Fatal(err)
			}
			defer idx.Close()
			min := make([]float64, k)
			max := make([]float64, k)
			for i := 0; i < 500; i++ {
				for d := 0; d < k; d++ {
					min[d] = float64((i * (d + 3)) % 900)
					max[d] = min[d] + float64(i%50)
				}
				r, err := segidx.NewRect(min, max)
				if err != nil {
					t.Fatal(err)
				}
				if err := idx.Insert(r, segidx.RecordID(i+1)); err != nil {
					t.Fatalf("insert %d: %v", i, err)
				}
			}
			if err := idx.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			all := make([]float64, k)
			hi := make([]float64, k)
			for d := range hi {
				hi[d] = 1000
			}
			q, _ := segidx.NewRect(all, hi)
			n, err := idx.Count(q)
			if err != nil || n != 500 {
				t.Fatalf("Count = %d, %v", n, err)
			}
		})
	}
}

func TestDeleteThroughPublicAPI(t *testing.T) {
	idx, err := segidx.NewSkeletonSRTree(segidx.SkeletonEstimate{
		Tuples: 1000,
		Domain: segidx.Box(0, 0, workload.DomainHi, workload.DomainHi),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	data := workload.R2.Generate(1000, 3)
	for i, r := range data {
		if err := idx.Insert(r, segidx.RecordID(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 500; i++ {
		n, err := idx.Delete(segidx.RecordID(i+1), data[i])
		if err != nil || n != 1 {
			t.Fatalf("delete %d: %d, %v", i, n, err)
		}
	}
	if idx.Len() != 500 {
		t.Fatalf("Len = %d", idx.Len())
	}
	if err := idx.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
