// Package segidx implements Segment Indexes: dynamic indexing structures
// for multi-dimensional interval data, reproducing Kolovson & Stonebraker,
// "Segment Indexes: Dynamic Indexing Techniques for Multi-Dimensional
// Interval Data" (SIGMOD 1991).
//
// The package provides the paper's four index types over a paged storage
// substrate with a buffer pool:
//
//	NewRTree            Guttman's R-Tree (the baseline)
//	NewSRTree           Segment R-Tree: spanning index records in non-leaf
//	                    nodes, with segment cutting, promotion and demotion
//	NewSkeletonRTree    pre-constructed R-Tree adapted by splitting and
//	                    coalescing
//	NewSkeletonSRTree   the combination — the paper's best performer on
//	                    skewed interval data
//
// All four share one engine, so comparisons between them isolate exactly
// the paper's three tactics: spanning records, per-level node sizes, and
// skeleton pre-construction.
//
// # Quick start
//
//	idx, err := segidx.NewSRTree()
//	if err != nil { ... }
//	// A record is a rectangle plus a caller-chosen ID. Intervals and
//	// points are degenerate rectangles.
//	_ = idx.Insert(segidx.Interval(1990, 1995, 52000), 1) // salary 52k for 1990-1995
//	matches, _ := idx.Search(segidx.Box(1992, 0, 1993, 100000))
//
// # Skewed interval data
//
// The paper's headline result concerns data whose interval lengths are
// highly non-uniform (e.g. historical data: many short salary periods, a
// few very long ones). For such data, construct a Skeleton SR-Tree with an
// estimate of the input:
//
//	idx, err := segidx.NewSkeletonSRTree(segidx.SkeletonEstimate{
//	    Tuples:          200_000,
//	    Domain:          segidx.Box(0, 0, 100_000, 100_000),
//	    PredictFraction: 0.05, // buffer 5% of the input, predict the rest
//	})
//
// # Persistence
//
// Indexes are in-memory by default. WithFile stores pages in a single
// file; Flush persists dirty nodes and metadata, and Open reattaches:
//
//	idx, _ := segidx.NewRTree(segidx.WithFile("index.db"))
//	...
//	_ = idx.Flush()
//	_ = idx.Close()
//	idx2, _ := segidx.Open("index.db")
package segidx
