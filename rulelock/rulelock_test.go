package rulelock

import (
	"errors"
	"math"
	"testing"

	"segidx/internal/workload"
)

func mustRegister(t *testing.T, m *Manager, low, high float64, action string) RuleID {
	t.Helper()
	id, err := m.Register(low, high, action)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func ruleIDs(rules []Rule) []RuleID {
	out := make([]RuleID, len(rules))
	for i, r := range rules {
		out[i] = r.ID
	}
	return out
}

func sameIDs(a []RuleID, b ...RuleID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestPaperExampleRules(t *testing.T) {
	m, err := NewManager()
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	// Section 2.2: Rule 1 on (10k, 20k], Rule 2 on exactly 100k. Closed
	// intervals here; the open lower bound is the caller's concern.
	r1 := mustRegister(t, m, 10_000, 20_000, "at least 1 window")
	r2 := mustRegister(t, m, 100_000, 100_000, "at least 4 windows")

	got, err := m.Triggered(15_000)
	if err != nil {
		t.Fatal(err)
	}
	if !sameIDs(ruleIDs(got), r1) {
		t.Fatalf("Triggered(15000) = %v", got)
	}
	got, err = m.Triggered(100_000)
	if err != nil {
		t.Fatal(err)
	}
	if !sameIDs(ruleIDs(got), r2) {
		t.Fatalf("Triggered(100000) = %v", got)
	}
	if !got[0].IsPoint() {
		t.Error("exact-value rule not reported as point")
	}
	got, err = m.Triggered(50_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("Triggered(50000) = %v", got)
	}
	// Boundaries are inclusive.
	got, _ = m.Triggered(20_000)
	if !sameIDs(ruleIDs(got), r1) {
		t.Fatalf("boundary trigger = %v", got)
	}
}

func TestRangeAndCoveringQueries(t *testing.T) {
	m, err := NewManager()
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	narrow := mustRegister(t, m, 40, 60, "narrow")
	wide := mustRegister(t, m, 0, 1000, "wide")
	point := mustRegister(t, m, 55, 55, "point")

	got, err := m.TriggeredRange(50, 70)
	if err != nil {
		t.Fatal(err)
	}
	if !sameIDs(ruleIDs(got), narrow, wide, point) {
		t.Fatalf("TriggeredRange = %v", ruleIDs(got))
	}
	cov, err := m.Covering(45, 55)
	if err != nil {
		t.Fatal(err)
	}
	if !sameIDs(ruleIDs(cov), narrow, wide) {
		t.Fatalf("Covering = %v", ruleIDs(cov))
	}
	if _, err := m.TriggeredRange(10, 5); err == nil {
		t.Error("inverted range accepted")
	}
	if _, err := m.Covering(10, 5); err == nil {
		t.Error("inverted covering range accepted")
	}
}

func TestDropRules(t *testing.T) {
	m, err := NewManager()
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	id := mustRegister(t, m, 1, 10, "x")
	if m.Len() != 1 {
		t.Fatalf("Len = %d", m.Len())
	}
	if err := m.Drop(id); err != nil {
		t.Fatal(err)
	}
	if m.Len() != 0 {
		t.Fatalf("Len after drop = %d", m.Len())
	}
	got, _ := m.Triggered(5)
	if len(got) != 0 {
		t.Fatalf("dropped rule still triggers: %v", got)
	}
	if err := m.Drop(id); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double drop = %v", err)
	}
}

func TestRegisterValidation(t *testing.T) {
	m, err := NewManager()
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if _, err := m.Register(10, 5, "inv"); err == nil {
		t.Error("inverted predicate accepted")
	}
	if _, err := m.Register(math.NaN(), 5, "nan"); err == nil {
		t.Error("NaN predicate accepted")
	}
}

func TestEscalationOfWidePredicates(t *testing.T) {
	m, err := NewManager()
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	// Many narrow rules force the index to grow; a domain-wide rule's
	// predicate spans subtrees and must be escalated to a non-leaf node.
	rng := workload.NewRNG(5)
	for i := 0; i < 400; i++ {
		lo := rng.Float64() * 99_000
		mustRegister(t, m, lo, lo+rng.Float64()*200, "narrow")
	}
	wideID := mustRegister(t, m, 0, 100_000, "audit everything")

	esc, err := m.Escalated()
	if err != nil {
		t.Fatal(err)
	}
	byID := make(map[RuleID]int)
	maxLevel := 0
	for _, e := range esc {
		byID[e.Rule.ID] = e.Level
		if e.Level > maxLevel {
			maxLevel = e.Level
		}
	}
	if maxLevel == 0 {
		t.Fatal("no predicate was escalated to a non-leaf node")
	}
	if byID[wideID] == 0 {
		t.Error("domain-wide predicate not escalated")
	}
	// Output is sorted by level descending.
	for i := 1; i < len(esc); i++ {
		if esc[i].Level > esc[i-1].Level {
			t.Fatal("escalations not sorted by level")
		}
	}
	// The wide rule still triggers correctly for arbitrary values.
	for _, v := range []float64{0, 42_000, 100_000} {
		got, err := m.Triggered(v)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, r := range got {
			if r.ID == wideID {
				found = true
			}
		}
		if !found {
			t.Fatalf("escalated rule missing for value %g", v)
		}
	}
}

func TestManyRulesMatchBruteForce(t *testing.T) {
	m, err := NewManager()
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	rng := workload.NewRNG(9)
	type pred struct {
		id        RuleID
		low, high float64
	}
	var preds []pred
	for i := 0; i < 1000; i++ {
		lo := rng.Float64() * 100_000
		width := 0.0
		switch rng.Intn(3) {
		case 0: // point rule
		case 1:
			width = rng.Float64() * 500
		default:
			width = rng.Exp(5000, 50_000)
		}
		id := mustRegister(t, m, lo, lo+width, "r")
		preds = append(preds, pred{id, lo, lo + width})
	}
	for q := 0; q < 300; q++ {
		v := rng.Float64() * 110_000
		got, err := m.Triggered(v)
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		for _, p := range preds {
			if v >= p.low && v <= p.high {
				want++
			}
		}
		if len(got) != want {
			t.Fatalf("value %g: %d rules, want %d", v, len(got), want)
		}
	}
}
