// Package rulelock manages rule predicates over a one-dimensional
// attribute domain using a segment index, the application sketched in
// Section 2.2 of the paper: a rule may trigger when an attribute value
// falls within an interval (EMP.salary > 10k AND <= 20k) or equals an
// exact value (EMP.salary = 100k). Storing each predicate's range as an
// index record makes "which rules does this value trigger?" a stabbing
// query, with interval and point predicates coexisting in one index — the
// paper's third motivating goal for segment indexes.
//
// The paper manages rule locks via index stub records, promoting
// ("escalating") a lock to a parent node when it spans everything beneath
// it. In this implementation a rule's predicate interval is itself the
// index record, and the SR-Tree's spanning-record mechanics perform the
// escalation: a predicate wide enough to span an index subtree is stored
// in a non-leaf node. Escalated reports which rules are currently held at
// which level.
package rulelock

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"segidx"
)

// RuleID identifies a registered rule.
type RuleID uint64

// Rule is a registered predicate with its action payload.
type Rule struct {
	ID   RuleID
	Low  float64 // inclusive lower bound of the predicate interval
	High float64 // inclusive upper bound; == Low for exact-value rules
	// Action is an opaque payload returned on trigger (e.g. the rule
	// body to execute).
	Action string
}

// IsPoint reports whether the rule triggers on an exact value.
func (r Rule) IsPoint() bool { return r.Low == r.High }

// ErrNotFound is returned when dropping an unknown rule.
var ErrNotFound = errors.New("rulelock: no such rule")

// Manager stores rule predicates in a one-dimensional SR-Tree. Safe for
// concurrent use by one writer and multiple readers.
type Manager struct {
	mu    sync.RWMutex
	idx   *segidx.Index
	rules map[RuleID]Rule
	next  RuleID
}

// NewManager creates an empty rule-lock manager.
func NewManager(opts ...segidx.Option) (*Manager, error) {
	base := []segidx.Option{segidx.WithDims(1), segidx.WithLeafNodeBytes(512)}
	idx, err := segidx.NewSRTree(append(base, opts...)...)
	if err != nil {
		return nil, err
	}
	return &Manager{idx: idx, rules: make(map[RuleID]Rule), next: 1}, nil
}

// Register installs a rule triggering for attribute values in [low, high]
// (low == high registers an exact-value rule) and returns its ID.
func (m *Manager) Register(low, high float64, action string) (RuleID, error) {
	if math.IsNaN(low) || math.IsNaN(high) {
		return 0, fmt.Errorf("rulelock: NaN predicate bound")
	}
	if high < low {
		return 0, fmt.Errorf("rulelock: inverted predicate [%g, %g]", low, high)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	id := m.next
	m.next++
	rect, err := segidx.NewRect([]float64{low}, []float64{high})
	if err != nil {
		return 0, err
	}
	if err := m.idx.Insert(rect, segidx.RecordID(id)); err != nil {
		return 0, err
	}
	m.rules[id] = Rule{ID: id, Low: low, High: high, Action: action}
	return id, nil
}

// Drop removes a rule.
func (m *Manager) Drop(id RuleID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	rule, ok := m.rules[id]
	if !ok {
		return ErrNotFound
	}
	rect, err := segidx.NewRect([]float64{rule.Low}, []float64{rule.High})
	if err != nil {
		return err
	}
	n, err := m.idx.Delete(segidx.RecordID(id), rect)
	if err != nil {
		return err
	}
	if n != 1 {
		return fmt.Errorf("rulelock: rule %d present in catalog but not in index", id)
	}
	delete(m.rules, id)
	return nil
}

// Triggered returns the rules whose predicate contains the value, in ID
// order.
func (m *Manager) Triggered(value float64) ([]Rule, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	entries, err := m.idx.Stab(value)
	if err != nil {
		return nil, err
	}
	return m.resolve(entries), nil
}

// TriggeredRange returns the rules that could trigger for some value in
// [low, high], in ID order. Useful for conflict analysis ("which rules
// are affected if salaries in this band change?").
func (m *Manager) TriggeredRange(low, high float64) ([]Rule, error) {
	if high < low {
		return nil, fmt.Errorf("rulelock: inverted range [%g, %g]", low, high)
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	rect, err := segidx.NewRect([]float64{low}, []float64{high})
	if err != nil {
		return nil, err
	}
	entries, err := m.idx.Search(rect)
	if err != nil {
		return nil, err
	}
	return m.resolve(entries), nil
}

// Covering returns the rules whose predicate covers the whole range
// [low, high] — every value in the range triggers them.
func (m *Manager) Covering(low, high float64) ([]Rule, error) {
	if high < low {
		return nil, fmt.Errorf("rulelock: inverted range [%g, %g]", low, high)
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	rect, err := segidx.NewRect([]float64{low}, []float64{high})
	if err != nil {
		return nil, err
	}
	entries, err := m.idx.SearchContaining(rect)
	if err != nil {
		return nil, err
	}
	return m.resolve(entries), nil
}

func (m *Manager) resolve(entries []segidx.Entry) []Rule {
	out := make([]Rule, 0, len(entries))
	for _, e := range entries {
		if rule, ok := m.rules[RuleID(e.ID)]; ok {
			out = append(out, rule)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// Escalation reports at which index level a rule's predicate is held.
type Escalation struct {
	Rule  Rule
	Level int // 0 = leaf; >= 1 means the lock was escalated to a non-leaf node
}

// Escalated returns, for every rule, the highest index level holding one
// of its predicate portions — the paper's lock-escalation view: wide
// predicates percolate to non-leaf nodes and are checked once per subtree
// rather than once per leaf record. Sorted by level (descending), then ID.
func (m *Manager) Escalated() ([]Escalation, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	highest := make(map[RuleID]int, len(m.rules))
	err := m.idx.VisitPortions(func(level int, e segidx.Entry) bool {
		id := RuleID(e.ID)
		if level > highest[id] {
			highest[id] = level
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	out := make([]Escalation, 0, len(m.rules))
	for id, rule := range m.rules {
		out = append(out, Escalation{Rule: rule, Level: highest[id]})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Level != out[b].Level {
			return out[a].Level > out[b].Level
		}
		return out[a].Rule.ID < out[b].Rule.ID
	})
	return out, nil
}

// Len reports the number of registered rules.
func (m *Manager) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.rules)
}

// Rules returns all registered rules in ID order.
func (m *Manager) Rules() []Rule {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]Rule, 0, len(m.rules))
	for _, r := range m.rules {
		out = append(out, r)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// Close releases the underlying index.
func (m *Manager) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.idx.Close()
}
