package segidx_test

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"segidx"
	"segidx/internal/store"
)

// Facade-level persistence tests for the sharded forest: a durable
// forest survives Close/OpenDurable with its full contents, reopening
// detects the manifest automatically, and the flush protocol's ordering
// invariant is enforced on the way back in — a shard whose durable epoch
// is ahead of the manifest is rejected as corruption.

func TestForestDurableRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "forest.db")
	idx, err := segidx.NewSRTree(
		segidx.WithDurableFile(path),
		segidx.WithShards(3),
		segidx.WithLeafNodeBytes(256),
	)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	live := make(map[segidx.RecordID]segidx.Rect)
	for i := 0; i < 200; i++ {
		r := diffRect(rng)
		id := segidx.RecordID(i + 1)
		if err := idx.Insert(r, id); err != nil {
			t.Fatal(err)
		}
		live[id] = r
	}
	for i := 0; i < 40; i++ {
		id := segidx.RecordID(5*i + 1)
		if _, err := idx.Delete(id, live[id]); err != nil {
			t.Fatal(err)
		}
		delete(live, id)
	}
	if err := idx.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := segidx.OpenDurable(path)
	if err != nil {
		t.Fatal(err)
	}
	if re.Shards() != 3 {
		t.Fatalf("reopened forest has %d shards, want 3", re.Shards())
	}
	if re.Kind() != "sr-tree" {
		t.Fatalf("reopened kind = %q, want sr-tree", re.Kind())
	}
	if re.Len() != len(live) {
		t.Fatalf("reopened Len = %d, want %d", re.Len(), len(live))
	}
	if err := re.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 40; q++ {
		query := diffRect(rng)
		got, err := re.Search(query)
		if err != nil {
			t.Fatal(err)
		}
		var want []segidx.RecordID
		for id, r := range live {
			if r.Intersects(query) {
				want = append(want, id)
			}
		}
		if !equalIDSlices(sortedIDs(got), sortedRecordIDs(want)) {
			t.Fatalf("query %d: got %d records, want %d", q, len(got), len(want))
		}
	}

	// The reopened forest keeps working: mutate, close, reopen again.
	if err := re.Insert(segidx.Box(5, 5, 6, 6), 9999); err != nil {
		t.Fatal(err)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	re2, err := segidx.OpenDurable(path)
	if err != nil {
		t.Fatal(err)
	}
	if re2.Len() != len(live)+1 {
		t.Fatalf("second reopen Len = %d, want %d", re2.Len(), len(live)+1)
	}
	if err := re2.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestForestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "forest.db")
	idx, err := segidx.NewRTree(
		segidx.WithFile(path),
		segidx.WithShards(2),
		segidx.WithLeafNodeBytes(256),
	)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		if err := idx.Insert(diffRect(rng), segidx.RecordID(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := idx.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := segidx.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if re.Shards() != 2 || re.Len() != 100 {
		t.Fatalf("reopened shards=%d len=%d, want 2 and 100", re.Shards(), re.Len())
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestForestShardAheadOfManifestIsBroken destroys the manifest slot that
// recorded the last commit, leaving every shard's durable epoch ahead of
// the best surviving manifest epoch — a state no crash of the
// manifest-first flush protocol can produce. Reopening must refuse with
// ErrBroken rather than serve a forest that time-travelled backwards.
func TestForestShardAheadOfManifestIsBroken(t *testing.T) {
	path := filepath.Join(t.TempDir(), "forest.db")
	idx, err := segidx.NewSRTree(
		segidx.WithDurableFile(path),
		segidx.WithShards(2),
		segidx.WithLeafNodeBytes(256),
	)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 50; i++ {
		if err := idx.Insert(diffRect(rng), segidx.RecordID(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := idx.Close(); err != nil { // commits manifest epoch 1 (slot 1)
		t.Fatal(err)
	}

	// Corrupt the epoch-1 slot; slot 0 still holds the epoch-0 manifest,
	// so the manifest itself remains readable, just older than the shards.
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(make([]byte, 64), 64); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	if _, err := segidx.OpenDurable(path); !errors.Is(err, store.ErrBroken) {
		t.Fatalf("OpenDurable with shards ahead of manifest = %v, want ErrBroken", err)
	}
}

func TestShardOptionValidation(t *testing.T) {
	if _, err := segidx.NewRTree(segidx.WithShards(-1)); err == nil {
		t.Fatal("WithShards(-1) accepted")
	}
	if _, err := segidx.NewRTree(
		segidx.WithStore(store.NewMemStore()), segidx.WithShards(2)); err == nil {
		t.Fatal("WithStore+WithShards accepted; they are mutually exclusive")
	}
	// WithShards(1) and WithShards(0) mean a plain single tree.
	idx, err := segidx.NewRTree(segidx.WithShards(1))
	if err != nil {
		t.Fatal(err)
	}
	if idx.Shards() != 1 {
		t.Fatalf("Shards() = %d, want 1", idx.Shards())
	}
}

func sortedRecordIDs(ids []segidx.RecordID) []segidx.RecordID {
	out := append([]segidx.RecordID(nil), ids...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
