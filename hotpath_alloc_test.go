//go:build !race

package segidx_test

// Allocation regression gates for the zero-allocation read path. Each test
// asserts testing.AllocsPerRun == 0 for a view-lifetime query API on a
// fully resident tree, for all four index variants. A regression here means
// something on the search path started escaping to the heap — run the
// benchmark in hotpath_bench_test.go with -memprofile to find it.
//
// The race detector instruments allocations and defeats the measurement,
// so this file is excluded from -race builds (the CI bench smoke job still
// runs the benchmarks themselves under -race for correctness).

import (
	"runtime/debug"
	"testing"

	"segidx"
	"segidx/internal/harness"
	"segidx/internal/workload"
)

// allocTuples keeps the alloc-gate trees small: residency is what matters,
// not scale, and AllocsPerRun runs the probe many times.
const allocTuples = 4000

// withGCOff disables the collector for the duration of fn so a mid-probe
// GC cannot clear the query-context sync.Pool and charge the refill to the
// measured run.
func withGCOff(fn func()) {
	old := debug.SetGCPercent(-1)
	defer debug.SetGCPercent(old)
	fn()
}

func TestSearchFuncZeroAllocs(t *testing.T) {
	for _, kind := range harness.AllKinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			spec := harness.NewSpec("allocgate", workload.I3, allocTuples)
			idx := buildFor(t, spec, kind)
			defer idx.Close()
			queries := hotpathQueries(spec)
			warmResident(t, idx, queries)
			fn := func(segidx.Entry) bool { return true }
			i := 0
			var avg float64
			withGCOff(func() {
				avg = testing.AllocsPerRun(100, func() {
					if err := idx.SearchFunc(queries[i%len(queries)], fn); err != nil {
						t.Fatal(err)
					}
					i++
				})
			})
			if avg != 0 {
				t.Fatalf("SearchFunc allocates %g objects per call on a resident tree, want 0", avg)
			}
		})
	}
}

func TestStabFuncZeroAllocs(t *testing.T) {
	for _, kind := range harness.AllKinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			spec := harness.NewSpec("allocgate", workload.I3, allocTuples)
			idx := buildFor(t, spec, kind)
			defer idx.Close()
			points := stabPoints(spec, 64)
			fn := func(segidx.Entry) bool { return true }
			for _, p := range points {
				if err := idx.StabFunc(fn, p...); err != nil {
					t.Fatal(err)
				}
			}
			i := 0
			var avg float64
			withGCOff(func() {
				avg = testing.AllocsPerRun(100, func() {
					if err := idx.StabFunc(fn, points[i%len(points)]...); err != nil {
						t.Fatal(err)
					}
					i++
				})
			})
			if avg != 0 {
				t.Fatalf("StabFunc allocates %g objects per call on a resident tree, want 0", avg)
			}
		})
	}
}

// accelAllocIndex builds a sidecar-accelerated index in always mode and
// loads it with interval data, returning stab points on the hot dimension.
func accelAllocIndex(t *testing.T) (*segidx.Index, [][]float64) {
	t.Helper()
	idx := accelBuild(t, "sr-tree", 1, allocTuples,
		segidx.WithStabAccel(0, 10), segidx.WithHybridMode(segidx.HybridAlways))
	records := workload.I3.Generate(allocTuples, 31)
	for i, r := range records {
		if err := idx.Insert(r, segidx.RecordID(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	var points [][]float64
	for i := 0; i < len(records) && len(points) < 64; i += len(records) / 64 {
		r := records[i]
		points = append(points, []float64{(r.Min[0] + r.Max[0]) / 2, r.Min[1]})
	}
	return idx, points
}

// accelRouted sums the sidecar-routed query count across all shards.
func accelRouted(idx *segidx.Index) uint64 {
	var n uint64
	for _, s := range idx.AccelStats() {
		n += s.RoutedAccel
	}
	return n
}

func TestAccelStabFuncZeroAllocs(t *testing.T) {
	idx, points := accelAllocIndex(t)
	defer idx.Close()
	fn := func(segidx.Entry) bool { return true }
	for _, p := range points {
		if err := idx.StabFunc(fn, p...); err != nil {
			t.Fatal(err)
		}
	}
	before := accelRouted(idx)
	i := 0
	var avg float64
	withGCOff(func() {
		avg = testing.AllocsPerRun(100, func() {
			if err := idx.StabFunc(fn, points[i%len(points)]...); err != nil {
				t.Fatal(err)
			}
			i++
		})
	})
	if accelRouted(idx) <= before {
		t.Fatal("always mode did not route the probes through the sidecar")
	}
	if avg != 0 {
		t.Fatalf("sidecar StabFunc allocates %g objects per call, want 0", avg)
	}
}

func TestAccelCountZeroAllocs(t *testing.T) {
	idx, points := accelAllocIndex(t)
	defer idx.Close()
	// Vertical hot-dimension lines: the 1-D-degenerate ranges the sidecar
	// answers from its stab-part plus origin-part scan.
	queries := make([]segidx.Rect, len(points))
	for i, p := range points {
		queries[i] = segidx.Box(p[0], workload.DomainLo, p[0], workload.DomainHi)
	}
	for _, q := range queries {
		if _, err := idx.Count(q); err != nil {
			t.Fatal(err)
		}
	}
	before := accelRouted(idx)
	i := 0
	var avg float64
	withGCOff(func() {
		avg = testing.AllocsPerRun(100, func() {
			if _, err := idx.Count(queries[i%len(queries)]); err != nil {
				t.Fatal(err)
			}
			i++
		})
	})
	if accelRouted(idx) <= before {
		t.Fatal("always mode did not route the probes through the sidecar")
	}
	if avg != 0 {
		t.Fatalf("sidecar Count allocates %g objects per call, want 0", avg)
	}
}

func TestCountZeroAllocs(t *testing.T) {
	for _, kind := range harness.AllKinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			spec := harness.NewSpec("allocgate", workload.I3, allocTuples)
			idx := buildFor(t, spec, kind)
			defer idx.Close()
			queries := hotpathQueries(spec)
			warmResident(t, idx, queries)
			i := 0
			var avg float64
			withGCOff(func() {
				avg = testing.AllocsPerRun(100, func() {
					if _, err := idx.Count(queries[i%len(queries)]); err != nil {
						t.Fatal(err)
					}
					i++
				})
			})
			if avg != 0 {
				t.Fatalf("Count allocates %g objects per call on a resident tree, want 0", avg)
			}
		})
	}
}
