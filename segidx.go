package segidx

import (
	"errors"
	"fmt"
	"sync/atomic"

	"segidx/internal/accel"
	"segidx/internal/buffer"
	"segidx/internal/core"
	"segidx/internal/forest"
	"segidx/internal/geom"
	"segidx/internal/histogram"
	"segidx/internal/node"
	"segidx/internal/skeleton"
	"segidx/internal/store"
)

// Rect is a closed axis-aligned rectangle in K >= 1 dimensions. Points and
// intervals are rectangles with degenerate extents.
type Rect = geom.Rect

// RecordID identifies a logical record. IDs must be unique per logical
// record: when the index cuts a record into spanning and remnant portions,
// the shared ID is what deduplicates search results and drives deletion.
type RecordID = node.RecordID

// Entry is one search result.
type Entry = core.Entry

// Stats holds tree activity counters; see core.Stats for field docs.
type Stats = core.Stats

// PoolStats holds buffer pool counters (gets, hits, misses, evictions,
// write-backs), aggregated across the pool's lock stripes.
type PoolStats = buffer.Stats

// Report is a structural quality report; see (*Index).Analyze.
type Report = core.Report

// AccelStats holds one stab-accelerator sidecar's counters (routing
// decisions, EWMA latencies, live slots); see WithStabAccel.
type AccelStats = accel.Stats

// HybridMode selects how queries route between the tree and an attached
// stab accelerator; see WithHybridMode.
type HybridMode = accel.Mode

const (
	// HybridAuto routes each eligible query adaptively, using observed
	// latencies of both sides plus occasional probes of the disfavored one.
	HybridAuto = accel.ModeAuto
	// HybridAlways routes every eligible query to the accelerator.
	HybridAlways = accel.ModeAlways
	// HybridOff keeps the accelerator maintained but never routes to it.
	HybridOff = accel.ModeOff
)

// ParseHybridMode parses "auto", "always", or "off" into a HybridMode.
func ParseHybridMode(s string) (HybridMode, error) { return accel.ParseMode(s) }

// Histogram estimates a per-dimension value distribution for skeleton
// construction.
type Histogram = histogram.Histogram

// NewHistogram creates an empty histogram over [lo, hi] with the given
// number of bins.
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	return histogram.New(lo, hi, bins)
}

// Box builds a 2-dimensional rectangle [xlo, xhi] x [ylo, yhi]. It panics
// on inverted extents; use NewRect for checked construction.
func Box(xlo, ylo, xhi, yhi float64) Rect { return geom.Rect2(xlo, ylo, xhi, yhi) }

// Interval builds the paper's "time range data" shape: an interval
// [lo, hi] in dimension 0 crossed with a point value in dimension 1.
func Interval(lo, hi, at float64) Rect { return geom.Rect2(lo, at, hi, at) }

// Point builds a degenerate rectangle containing exactly one point.
func Point(coords ...float64) Rect { return geom.Point(coords...) }

// NewRect builds a validated rectangle from min/max corners.
func NewRect(min, max []float64) (Rect, error) { return geom.NewRect(min, max) }

// engine is the operation set shared by core.Tree and skeleton.Predictor.
type engine interface {
	Insert(Rect, RecordID) error
	Delete(RecordID, Rect) (int, error)
	DeleteWhere(Rect, func(Entry) bool) (int, error)
	Search(Rect) ([]Entry, error)
	SearchFunc(Rect, func(Entry) bool) error
	SearchWithin(Rect) ([]Entry, error)
	SearchContaining(Rect) ([]Entry, error)
	SearchContainingFunc(Rect, func(Entry) bool) error
	VisitPortions(func(level int, e Entry) bool) error
	Count(Rect) (int, error)
	Len() int
	Height() int
	NodeCount() int
	Stats() Stats
	PoolStats() buffer.Stats
	Flush() error
	CheckInvariants() error
	Analyze() (*Report, error)
	Snapshot() core.View
	CommitEpoch() uint64
	AccelStats() []accel.Stats
}

// Index is a segment index: one of R-Tree, SR-Tree, Skeleton R-Tree, or
// Skeleton SR-Tree.
//
// An Index is safe for concurrent use: mutations serialize behind an
// internal write lock per shard, while queries pin an MVCC snapshot and
// traverse copy-on-write page versions with no tree-level lock — a
// committing writer never blocks readers. Snapshot exposes the same
// mechanism as an explicit repeatable-read View. The batch APIs
// (SearchBatch, StabBatch, InsertBatch) fan work across a bounded
// goroutine pool; see WithParallelism.
type Index struct {
	eng   engine
	st    store.Store
	kind  string
	owned bool         // whether Close should close the store
	par   atomic.Int32 // batch worker bound; 0 = GOMAXPROCS
}

// Kind reports which index type this is ("r-tree", "sr-tree",
// "skeleton-r-tree", "skeleton-sr-tree").
func (x *Index) Kind() string { return x.kind }

// Insert adds a record. The rectangle's dimensionality must match the
// index; IDs must be unique per logical record.
func (x *Index) Insert(r Rect, id RecordID) error { return x.eng.Insert(r, id) }

// Delete removes the record with the given ID. hint must cover the
// rectangle originally inserted (passing that rectangle is ideal); it
// bounds the search for the record's portions. Returns the number of
// logical records removed (0 or 1).
func (x *Index) Delete(id RecordID, hint Rect) (int, error) { return x.eng.Delete(id, hint) }

// DeleteWhere removes every logical record that has a stored portion
// intersecting query and satisfying pred (nil matches everything),
// returning the number removed. Useful for retention policies ("drop all
// history before 1990").
func (x *Index) DeleteWhere(query Rect, pred func(Entry) bool) (int, error) {
	return x.eng.DeleteWhere(query, pred)
}

// Search returns the records intersecting query, deduplicated by ID. The
// result is owned by the caller: rectangles are copied out of the index
// into one shared backing array, so a non-empty result costs two
// allocations regardless of size.
func (x *Index) Search(query Rect) ([]Entry, error) { return x.eng.Search(query) }

// SearchFunc streams every stored portion intersecting query; fn returning
// false stops early. Cut records may be visited once per portion.
//
// The Entry passed to fn is a view: its rectangle aliases index-owned
// memory and is valid only for the duration of the callback. Clone the
// rectangle to retain it. In exchange, a query over resident pages
// performs zero heap allocations.
func (x *Index) SearchFunc(query Rect, fn func(Entry) bool) error {
	return x.eng.SearchFunc(query, fn)
}

// Count returns the number of logical records intersecting query.
func (x *Index) Count(query Rect) (int, error) { return x.eng.Count(query) }

// VisitPortions walks every stored record portion with the tree level it
// is stored at (0 = leaf; higher levels are spanning index records). For
// structural inspection; fn returning false stops the walk. Entry
// rectangles are views valid only during the callback.
func (x *Index) VisitPortions(fn func(level int, e Entry) bool) error {
	return x.eng.VisitPortions(fn)
}

// Stab returns the records containing the given point — the stabbing
// query central to interval indexing ("all intervals that contain a given
// point", Section 2.1.1). The result is owned by the caller; use StabFunc
// for the allocation-free streaming form.
func (x *Index) Stab(coords ...float64) ([]Entry, error) {
	return x.SearchContaining(Point(coords...))
}

// StabFunc streams the records containing the given point. Each record is
// reported exactly once with the union of its stored portions as the
// rectangle — a view valid only during the callback; Clone it to retain
// it. fn returning false stops early. Like SearchFunc, a stab over
// resident pages performs zero heap allocations.
func (x *Index) StabFunc(fn func(Entry) bool, coords ...float64) error {
	// The point rectangle views the coords slice directly instead of
	// copying it (Point validates and copies); validateRect inside the
	// engine still rejects NaNs and dimension mismatches.
	return x.eng.SearchContainingFunc(Rect{Min: coords, Max: coords}, fn)
}

// SearchContainingFunc streams the records that entirely contain query
// (the generalized stabbing query), one callback per logical record with
// the union of its stored portions as the rectangle — a view valid only
// during the callback. fn returning false stops early.
func (x *Index) SearchContainingFunc(query Rect, fn func(Entry) bool) error {
	return x.eng.SearchContainingFunc(query, fn)
}

// SearchWithin returns the records entirely contained in query,
// deduplicated by ID.
func (x *Index) SearchWithin(query Rect) ([]Entry, error) {
	return x.eng.SearchWithin(query)
}

// SearchContaining returns the records that entirely contain query (the
// generalized stabbing query). Cut records are reassembled before the
// containment test.
func (x *Index) SearchContaining(query Rect) ([]Entry, error) {
	return x.eng.SearchContaining(query)
}

// View is an immutable snapshot of an index: queries on it acquire no
// tree-level lock and observe exactly the committed state at the moment
// Snapshot was called, no matter how many writes commit afterwards. See
// (*Index).Snapshot.
type View = core.View

// ErrSnapshotReleased is returned by View methods used after Release.
var ErrSnapshotReleased = core.ErrSnapshotReleased

// Snapshot pins an immutable view of the index via MVCC page versioning:
// the writer copy-on-writes every page it touches, so the view's reads
// proceed lock-free against concurrent writers and always observe the
// commit boundary they were pinned at. Release must be called when done —
// a held view retains every superseded page version it can reach. On a
// sharded index the shard views are pinned in shard order (see
// forest.Snapshot for the cross-shard atomicity contract).
func (x *Index) Snapshot() View { return x.eng.Snapshot() }

// CommitEpoch reports a monotonic stamp of committed mutations: stable
// while the index is unchanged, increasing with every committed
// Insert/Delete/DeleteWhere. Snapshots taken at equal epochs observe equal
// contents.
func (x *Index) CommitEpoch() uint64 { return x.eng.CommitEpoch() }

// Len reports the number of logical records stored.
func (x *Index) Len() int { return x.eng.Len() }

// Height reports the number of tree levels.
func (x *Index) Height() int { return x.eng.Height() }

// NodeCount reports the number of index nodes (pages).
func (x *Index) NodeCount() int { return x.eng.NodeCount() }

// Stats returns a snapshot of activity counters. The paper's cost metric —
// average index nodes accessed per search — is the delta of
// SearchNodeAccesses over the delta of Searches.
func (x *Index) Stats() Stats { return x.eng.Stats() }

// PoolStats returns a snapshot of buffer pool counters: cache hits and
// misses, evictions, and dirty write-backs. The hit rate over a query
// sweep shows how well the working set fits the pool budget.
func (x *Index) PoolStats() PoolStats { return x.eng.PoolStats() }

// AccelStats returns per-sidecar counters for stab accelerators attached
// via WithStabAccel — one entry per accelerated shard, in shard order.
// Empty when no accelerator is attached, or while a predictive skeleton
// index is still buffering its sample.
func (x *Index) AccelStats() []AccelStats { return x.eng.AccelStats() }

// Flush persists dirty nodes and metadata to the page store.
func (x *Index) Flush() error { return x.eng.Flush() }

// CheckInvariants validates the entire structure; see core.Tree.
func (x *Index) CheckInvariants() error { return x.eng.CheckInvariants() }

// Analyze computes a structural report: per-level node counts, coverage
// area, sibling overlap, aspect ratios, and occupancy.
func (x *Index) Analyze() (*Report, error) { return x.eng.Analyze() }

// Close flushes and releases the index and, when the index owns its store
// (default in-memory store or WithFile), closes the store. The store is
// closed even when the flush fails; all errors are reported. A sharded
// index closes every shard store and the forest manifest.
func (x *Index) Close() error {
	if f := x.asForest(); f != nil {
		return f.Close()
	}
	err := x.eng.Flush()
	if x.owned {
		err = errors.Join(err, x.st.Close())
	}
	return err
}

// SkeletonEstimate describes the expected input for skeleton
// pre-construction (Section 4 of the paper).
type SkeletonEstimate struct {
	// Tuples is the expected number of records.
	Tuples int
	// Domain is the value domain in every dimension.
	Domain Rect
	// Histograms optionally gives the expected distribution per
	// dimension (nil entries mean uniform). Ignored when PredictFraction
	// is set.
	Histograms []*Histogram
	// PredictFraction, when positive, enables distribution prediction:
	// the index buffers this fraction of Tuples (the paper recommends
	// 0.05–0.10), computes histograms from the sample, and then builds
	// the skeleton.
	PredictFraction float64
}

// NewRTree creates a dynamic R-Tree (the paper's baseline, Guttman 1984)
// over a paged store.
func NewRTree(opts ...Option) (*Index, error) {
	return build("r-tree", false, nil, opts)
}

// NewSRTree creates a dynamic SR-Tree: an R-Tree extended with spanning
// index records in non-leaf nodes (Section 3).
func NewSRTree(opts ...Option) (*Index, error) {
	return build("sr-tree", true, nil, opts)
}

// NewSkeletonRTree creates a pre-constructed R-Tree that adapts to the
// input by node splitting and coalescing (Section 4).
func NewSkeletonRTree(est SkeletonEstimate, opts ...Option) (*Index, error) {
	return build("skeleton-r-tree", false, &est, opts)
}

// NewSkeletonSRTree creates a pre-constructed SR-Tree — the paper's best
// performing index on skewed interval data.
func NewSkeletonSRTree(est SkeletonEstimate, opts ...Option) (*Index, error) {
	return build("skeleton-sr-tree", true, &est, opts)
}

// newIndex assembles the public handle around an engine, applying the
// resolved runtime options.
func newIndex(eng engine, st store.Store, kind string, owned bool, o *options) *Index {
	x := &Index{eng: eng, st: st, kind: kind, owned: owned}
	x.par.Store(int32(o.par))
	return x
}

func build(kind string, spanning bool, est *SkeletonEstimate, opts []Option) (*Index, error) {
	o, err := resolve(opts)
	if err != nil {
		return nil, err
	}
	if o.shards > 1 {
		return buildForest(kind, spanning, est, o)
	}
	cfg := o.cfg
	cfg.Spanning = spanning
	if est == nil {
		cfg.CoalesceEvery = 0 // coalescing is a skeleton-index adaptation
	}
	st, owned, err := o.openStore()
	if err != nil {
		return nil, err
	}
	fail := func(err error) (*Index, error) {
		if owned {
			err = errors.Join(err, st.Close())
		}
		return nil, err
	}
	if est == nil {
		t, err := core.New(cfg, st)
		if err != nil {
			return fail(err)
		}
		if err := o.attachStabAccel(t, nil); err != nil {
			return fail(err)
		}
		return newIndex(t, st, kind, owned, o), nil
	}
	if est.Tuples < 1 {
		return fail(fmt.Errorf("segidx: skeleton estimate of %d tuples", est.Tuples))
	}
	if est.PredictFraction > 0 {
		p, err := skeleton.New(cfg, st, est.Domain, est.Tuples, est.PredictFraction)
		if err != nil {
			return fail(err)
		}
		if o.accelOn {
			p.SetAttach(func(t *core.Tree) error { return o.attachStabAccel(t, est) })
		}
		return newIndex(p, st, kind, owned, o), nil
	}
	t, err := core.NewSkeleton(cfg, st, core.Estimate{
		Tuples: est.Tuples,
		Domain: est.Domain,
		Hists:  est.Histograms,
	})
	if err != nil {
		return fail(err)
	}
	if err := o.attachStabAccel(t, est); err != nil {
		return fail(err)
	}
	return newIndex(t, st, kind, owned, o), nil
}

// BulkRecord pairs a rectangle with its ID for bulk loading.
type BulkRecord = core.Record

// BulkLoadRTree builds a packed R-Tree bottom-up from a complete dataset
// (Sort-Tile-Recursive packing at the given fill fraction, 0 < fill <= 1)
// — the static construction of Roussopoulos & Leifker that the paper
// contrasts skeleton indexes against. The resulting index is fully dynamic
// afterwards: inserts and deletes behave as on any R-Tree.
func BulkLoadRTree(records []BulkRecord, fill float64, opts ...Option) (*Index, error) {
	o, err := resolve(opts)
	if err != nil {
		return nil, err
	}
	if o.shards > 1 {
		return bulkLoadForest(records, fill, o)
	}
	cfg := o.cfg
	cfg.Spanning = false
	cfg.CoalesceEvery = 0
	st, owned, err := o.openStore()
	if err != nil {
		return nil, err
	}
	t, err := core.BulkLoad(cfg, st, records, fill)
	if err == nil {
		err = o.attachStabAccel(t, nil)
	}
	if err != nil {
		if owned {
			err = errors.Join(err, st.Close())
		}
		return nil, err
	}
	return newIndex(t, st, "packed-r-tree", owned, o), nil
}

// Open reattaches an index previously persisted with Flush or Close to a
// file created via WithFile. The stored metadata supplies the structural
// configuration (dimensions, page sizes, spanning mode); options may tune
// runtime knobs such as the buffer budget. A path holding a forest
// manifest (WithFile + WithShards) reassembles the whole forest.
func Open(path string, opts ...Option) (*Index, error) {
	if forest.SniffManifest(store.OS, path) {
		return openForest(path, false, opts)
	}
	fs, err := store.OpenFileStore(path)
	if err != nil {
		return nil, err
	}
	return openStore(fs, opts)
}

// OpenDurable reattaches an index created via WithDurableFile. Opening
// replays the write-ahead log first: an interrupted Flush is either
// finished or discarded, so the index always comes back at a commit
// boundary. A path holding a forest manifest (WithDurableFile +
// WithShards) replays every shard's log and reassembles the forest at
// the manifest's epoch.
func OpenDurable(path string, opts ...Option) (*Index, error) {
	if forest.SniffManifest(store.OS, path) {
		return openForest(path, true, opts)
	}
	ws, err := store.OpenWALStore(path)
	if err != nil {
		return nil, err
	}
	return openStore(ws, opts)
}

func openStore(fs store.Store, opts []Option) (*Index, error) {
	o, err := resolve(opts)
	if err != nil {
		return nil, errors.Join(err, fs.Close())
	}
	meta, err := core.ReadMeta(fs)
	if err != nil {
		return nil, errors.Join(err, fs.Close())
	}
	cfg := o.cfg
	cfg.Dims = meta.Dims
	cfg.Sizes.LeafBytes = meta.LeafBytes
	cfg.Sizes.Growth = meta.Growth
	cfg.Spanning = meta.Spanning
	t, err := core.Open(cfg, fs)
	if err != nil {
		return nil, errors.Join(err, fs.Close())
	}
	if err := o.attachStabAccel(t, nil); err != nil {
		return nil, errors.Join(err, fs.Close())
	}
	kind := "r-tree"
	if meta.Spanning {
		kind = "sr-tree"
	}
	return newIndex(t, fs, kind, true, o), nil
}

// ErrNoMeta is returned by Open when the file holds no persisted index.
var ErrNoMeta = core.ErrNoMeta

// sentinel re-exports for callers matching errors.
var (
	// ErrDims indicates a rectangle of the wrong dimensionality.
	ErrDims = core.ErrDims
	// ErrBadRect indicates an invalid rectangle.
	ErrBadRect = core.ErrBadRect
)

// ensure both engines satisfy the interface.
var (
	_ engine = (*core.Tree)(nil)
	_ engine = (*skeleton.Predictor)(nil)
	_        = errors.Is
)
