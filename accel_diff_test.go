package segidx_test

import (
	"fmt"
	"math/rand"
	"testing"

	"segidx"
	"segidx/internal/workload"
)

// The accelerator differential battery: an index with a stab-accelerator
// sidecar attached must be observationally equivalent to the same index
// without one, in every hybrid mode, across every variant, shard count,
// and dataset shape — including under interleaved deletes and pinned MVCC
// snapshots, where the sidecar must reproduce historical epochs exactly.
// Results are compared as deduplicated ID sets: the sidecar reports each
// record's full original rectangle where the tree may report a cut
// record's narrower portion union, so IDs are the invariant the API
// promises.

// accelDatasets are the workload shapes the battery drives: uniform
// segments, fat rectangles, and the append-mostly temporal TI order.
func accelDatasets() []workload.Dataset {
	return []workload.Dataset{workload.I1, workload.R2, workload.TI}
}

// accelBuild constructs one index of the given variant; extra options add
// the accelerator for DUTs and nothing for oracles.
func accelBuild(t testing.TB, kind string, shards, tuples int, extra ...segidx.Option) *segidx.Index {
	t.Helper()
	opts := append([]segidx.Option{segidx.WithLeafNodeBytes(512)}, extra...)
	if shards > 1 {
		opts = append(opts, segidx.WithShards(shards))
	}
	est := segidx.SkeletonEstimate{Tuples: tuples, Domain: workload.Domain()}
	pred := est
	pred.PredictFraction = 0.05
	var x *segidx.Index
	var err error
	switch kind {
	case "r-tree":
		x, err = segidx.NewRTree(opts...)
	case "sr-tree":
		x, err = segidx.NewSRTree(opts...)
	case "skeleton-r-tree":
		x, err = segidx.NewSkeletonRTree(est, opts...)
	case "skeleton-sr-tree":
		x, err = segidx.NewSkeletonSRTree(pred, opts...)
	default:
		t.Fatalf("unknown kind %q", kind)
	}
	if err != nil {
		t.Fatal(err)
	}
	return x
}

// runAccelDifferential feeds the dataset records to both indexes with
// interleaved deletes, pinned snapshot pairs, and a query battery after
// every few steps. reuseIDs mixes in duplicate-ID inserts, which degrade
// the sidecar to a pass-through — equivalence must survive that too.
func runAccelDifferential(t *testing.T, oracle, dut *segidx.Index, recs []segidx.Rect, seed int64, reuseIDs bool) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	live := make(map[segidx.RecordID]segidx.Rect)
	var liveIDs []segidx.RecordID
	nextID := segidx.RecordID(1)

	type pinnedPair struct {
		ov, dv segidx.View
		step   int
	}
	var pins []pinnedPair
	defer func() {
		for _, p := range pins {
			p.ov.Release()
			p.dv.Release()
		}
	}()

	compare := func(step int) {
		x := rng.Float64() * workload.DomainHi
		y := rng.Float64() * workload.DomainHi
		queries := []segidx.Rect{
			// 1-D-degenerate vertical line: the routed stab hot path.
			segidx.Box(x, workload.DomainLo, x, workload.DomainHi),
			// Point stab and a narrow range.
			segidx.Box(x, y, x, y),
			segidx.Box(x, y, x+2500, y+2500),
		}
		for qi, q := range queries {
			want, err1 := oracle.Search(q)
			got, err2 := dut.Search(q)
			if err1 != nil || err2 != nil || !equalIDSlices(sortedIDs(want), sortedIDs(got)) {
				t.Fatalf("step %d query %d: Search(%v) diverges (%v, %v): %v vs %v",
					step, qi, q, err1, err2, sortedIDs(want), sortedIDs(got))
			}
			wantN, err1 := oracle.Count(q)
			gotN, err2 := dut.Count(q)
			if err1 != nil || err2 != nil || wantN != gotN {
				t.Fatalf("step %d query %d: Count = %d/%v vs %d/%v", step, qi, wantN, err1, gotN, err2)
			}
			wantC, err1 := oracle.SearchContaining(q)
			gotC, err2 := dut.SearchContaining(q)
			if err1 != nil || err2 != nil || !equalIDSlices(sortedIDs(wantC), sortedIDs(gotC)) {
				t.Fatalf("step %d query %d: SearchContaining diverges (%v, %v)", step, qi, err1, err2)
			}
		}
		wantS, err1 := oracle.Stab(x, y)
		gotS, err2 := dut.Stab(x, y)
		if err1 != nil || err2 != nil || !equalIDSlices(sortedIDs(wantS), sortedIDs(gotS)) {
			t.Fatalf("step %d: Stab diverges (%v, %v): %v vs %v",
				step, err1, err2, sortedIDs(wantS), sortedIDs(gotS))
		}
		wantF, err1 := uniqueIDs(func(fn func(segidx.Entry) bool) error { return oracle.StabFunc(fn, x, y) })
		gotF, err2 := uniqueIDs(func(fn func(segidx.Entry) bool) error { return dut.StabFunc(fn, x, y) })
		if err1 != nil || err2 != nil || !equalIDSets(wantF, gotF) {
			t.Fatalf("step %d: StabFunc diverges (%v, %v)", step, err1, err2)
		}
		// Historical equivalence: every pinned snapshot pair must agree at
		// its frozen epoch no matter how far the indexes have moved on.
		for _, p := range pins {
			for qi, q := range queries {
				want, err1 := p.ov.Search(q)
				got, err2 := p.dv.Search(q)
				if err1 != nil || err2 != nil || !equalIDSlices(sortedIDs(want), sortedIDs(got)) {
					t.Fatalf("step %d query %d: pinned (step %d) Search diverges (%v, %v): %v vs %v",
						step, qi, p.step, err1, err2, sortedIDs(want), sortedIDs(got))
				}
				wantN, err1 := p.ov.Count(q)
				gotN, err2 := p.dv.Count(q)
				if err1 != nil || err2 != nil || wantN != gotN {
					t.Fatalf("step %d: pinned (step %d) Count = %d vs %d", step, p.step, wantN, gotN)
				}
			}
			wantC, err1 := p.ov.SearchContaining(segidx.Point(x, y))
			gotC, err2 := p.dv.SearchContaining(segidx.Point(x, y))
			if err1 != nil || err2 != nil || !equalIDSlices(sortedIDs(wantC), sortedIDs(gotC)) {
				t.Fatalf("step %d: pinned (step %d) SearchContaining diverges (%v, %v)", step, p.step, err1, err2)
			}
		}
	}

	for step, r := range recs {
		id := nextID
		if reuseIDs && len(liveIDs) > 0 && rng.Intn(8) == 0 {
			id = liveIDs[rng.Intn(len(liveIDs))]
		} else {
			nextID++
			liveIDs = append(liveIDs, id)
		}
		if err1, err2 := oracle.Insert(r, id), dut.Insert(r, id); err1 != nil || err2 != nil {
			t.Fatalf("step %d: Insert errors: %v vs %v", step, err1, err2)
		}
		live[id] = orEmpty(live[id], r)

		if step%7 == 3 && len(liveIDs) > 0 {
			i := rng.Intn(len(liveIDs))
			did := liveIDs[i]
			liveIDs = append(liveIDs[:i], liveIDs[i+1:]...)
			hint := live[did]
			delete(live, did)
			n1, err1 := oracle.Delete(did, hint)
			n2, err2 := dut.Delete(did, hint)
			if n1 != n2 || (err1 == nil) != (err2 == nil) {
				t.Fatalf("step %d: Delete(%d) = (%d, %v) vs (%d, %v)", step, did, n1, err1, n2, err2)
			}
		}
		if step%37 == 17 {
			if len(pins) >= 3 {
				pins[0].ov.Release()
				pins[0].dv.Release()
				pins = pins[1:]
			}
			pins = append(pins, pinnedPair{ov: oracle.Snapshot(), dv: dut.Snapshot(), step: step})
		}
		if step%11 == 5 {
			compare(step)
		}
		if oracle.Len() != dut.Len() {
			t.Fatalf("step %d: Len diverges: %d vs %d", step, oracle.Len(), dut.Len())
		}
	}
	compare(len(recs))
	if err := dut.CheckInvariants(); err != nil {
		t.Fatalf("dut invariants: %v", err)
	}
	if err := oracle.Close(); err != nil {
		t.Fatal(err)
	}
	if err := dut.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestAccelDifferential(t *testing.T) {
	kinds := []string{"r-tree", "sr-tree", "skeleton-r-tree", "skeleton-sr-tree"}
	shardCounts := []int{1, 4}
	n := 400
	if testing.Short() {
		n = 150
	}
	for _, kind := range kinds {
		for _, shards := range shardCounts {
			for _, ds := range accelDatasets() {
				t.Run(fmt.Sprintf("%s/shards=%d/%v", kind, shards, ds), func(t *testing.T) {
					recs := ds.Generate(n, uint64(len(kind))*131+uint64(shards))
					oracle := accelBuild(t, kind, shards, n)
					dut := accelBuild(t, kind, shards, n,
						segidx.WithStabAccel(0, 8), segidx.WithHybridMode(segidx.HybridAlways))
					seed := int64(len(kind))*17 + int64(shards)*3 + int64(ds)
					runAccelDifferential(t, oracle, dut, recs, seed, false)
				})
			}
		}
	}
}

// TestAccelDifferentialAuto runs the battery in auto mode, where the cost
// gate freely flips between tree and sidecar mid-stream: both answers
// must be identical regardless of which side served each query.
func TestAccelDifferentialAuto(t *testing.T) {
	recs := workload.I2.Generate(400, 99)
	oracle := accelBuild(t, "sr-tree", 1, 400)
	dut := accelBuild(t, "sr-tree", 1, 400,
		segidx.WithStabAccel(0, 8), segidx.WithHybridMode(segidx.HybridAuto))
	runAccelDifferential(t, oracle, dut, recs, 42, false)
}

// TestAccelDifferentialDegrade mixes duplicate-ID inserts into the
// stream. The first duplicate permanently degrades the sidecar (its
// one-rectangle-per-ID model cannot represent reuse), and every
// subsequent query must fall back to the tree transparently.
func TestAccelDifferentialDegrade(t *testing.T) {
	recs := workload.I1.Generate(400, 7)
	oracle := accelBuild(t, "r-tree", 1, 400)
	dut := accelBuild(t, "r-tree", 1, 400,
		segidx.WithStabAccel(0, 8), segidx.WithHybridMode(segidx.HybridAlways))
	runAccelDifferential(t, oracle, dut, recs, 1234, true)
}

// TestAccelStatsSurface checks the facade stats plumbing: one entry per
// accelerated shard, live routing counters in always mode, and an empty
// slice without an accelerator.
func TestAccelStatsSurface(t *testing.T) {
	plain := accelBuild(t, "r-tree", 1, 100)
	if s := plain.AccelStats(); len(s) != 0 {
		t.Fatalf("AccelStats without accelerator = %v", s)
	}
	if err := plain.Close(); err != nil {
		t.Fatal(err)
	}

	dut := accelBuild(t, "sr-tree", 4, 200,
		segidx.WithStabAccel(0, 8), segidx.WithHybridMode(segidx.HybridAlways))
	for i, r := range workload.I1.Generate(200, 5) {
		if err := dut.Insert(r, segidx.RecordID(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		if _, err := dut.Search(segidx.Box(float64(i*97), workload.DomainLo, float64(i*97), workload.DomainHi)); err != nil {
			t.Fatal(err)
		}
	}
	stats := dut.AccelStats()
	if len(stats) != 4 {
		t.Fatalf("AccelStats on 4 shards has %d entries", len(stats))
	}
	var routed uint64
	var liveRecs int
	for _, s := range stats {
		if s.Degraded {
			t.Fatalf("sidecar degraded: %+v", s)
		}
		if s.Dim != 0 || s.Levels != 8 {
			t.Fatalf("sidecar config mismatch: %+v", s)
		}
		routed += s.RoutedAccel
		liveRecs += s.Live
	}
	if routed == 0 {
		t.Fatal("always mode routed no queries to the sidecar")
	}
	if liveRecs != 200 {
		t.Fatalf("sidecars hold %d live records, want 200", liveRecs)
	}
	if err := dut.Close(); err != nil {
		t.Fatal(err)
	}
}

// FuzzAccelOps feeds a decoded byte stream to an accelerated index and a
// plain oracle of the same variant, checking observational equivalence
// after every operation. The first bytes select the variant, the shard
// count, and the hybrid mode so the fuzzer explores every combination,
// and the per-op decoder matches FuzzForestOps so its corpus shapes
// carry over.
func FuzzAccelOps(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 1, 0, 10, 20, 30, 40})         // r-tree, 1 shard, always: one insert
	f.Add([]byte{2, 1, 0, 0, 1, 2, 3, 4, 1, 0, 2, 5}) // skeleton, 2 shards, auto
	f.Add([]byte{1, 2, 2, 0, 9, 9, 9, 9, 3, 7, 2, 1}) // sr-tree, 4 shards, off
	{
		var seed []byte
		seed = append(seed, 3, 0, 1) // skeleton-sr-tree, 1 shard, always
		for i := 0; i < 20; i++ {
			seed = append(seed, 0, byte(i*13), byte(i*7), byte(i*11), byte(i*5))
		}
		for i := 0; i < 6; i++ {
			seed = append(seed, 1, byte(i*3), 3, byte(i), 2, byte(i*9), byte(i*2), byte(i*4), byte(i))
		}
		f.Add(seed)
	}

	kinds := []string{"r-tree", "sr-tree", "skeleton-r-tree", "skeleton-sr-tree"}
	modes := []segidx.HybridMode{segidx.HybridAlways, segidx.HybridAuto, segidx.HybridOff}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1024 {
			t.Skip() // bound per-input work; long streams add no new shapes
		}
		if len(data) < 3 {
			return
		}
		kind := kinds[int(data[0])%len(kinds)]
		shards := 1 << (int(data[1]) % 3)
		mode := modes[int(data[2])%len(modes)]
		oracle := accelBuild(t, kind, shards, 200)
		dut := accelBuild(t, kind, shards, 200,
			segidx.WithStabAccel(0, 6), segidx.WithHybridMode(mode))
		pos := 3
		next := func() byte {
			if pos >= len(data) {
				return 0
			}
			b := data[pos]
			pos++
			return b
		}
		coord := func() float64 { return float64(next()) * workload.DomainHi / 255 }
		rect := func() segidx.Rect {
			x, y := coord(), coord()
			return segidx.Box(x, y, x+float64(next())*8, y+float64(next())*2)
		}
		nextID := segidx.RecordID(1)
		live := make(map[segidx.RecordID]segidx.Rect)
		var liveIDs []segidx.RecordID

		var pv, dv segidx.View // one optional pinned snapshot pair
		defer func() {
			if pv != nil {
				pv.Release()
				dv.Release()
			}
		}()

		for pos < len(data) {
			switch next() % 5 {
			case 0: // insert (duplicating a live ID on a marker byte)
				r := rect()
				id := nextID
				if len(liveIDs) > 0 && next()%16 == 0 {
					id = liveIDs[int(next())%len(liveIDs)]
				} else {
					nextID++
					liveIDs = append(liveIDs, id)
				}
				err1, err2 := oracle.Insert(r, id), dut.Insert(r, id)
				if err1 != nil || err2 != nil {
					t.Fatalf("Insert(%v, %d): %v vs %v", r, id, err1, err2)
				}
				live[id] = orEmpty(live[id], r)
			case 1: // delete a live record, or a missing one when none
				id := segidx.RecordID(999_999)
				hint := segidx.Box(workload.DomainLo, workload.DomainLo, workload.DomainHi, workload.DomainHi)
				if len(liveIDs) > 0 {
					i := int(next()) % len(liveIDs)
					id = liveIDs[i]
					liveIDs = append(liveIDs[:i], liveIDs[i+1:]...)
					hint = live[id]
					delete(live, id)
				}
				n1, err1 := oracle.Delete(id, hint)
				n2, err2 := dut.Delete(id, hint)
				if n1 != n2 || (err1 == nil) != (err2 == nil) {
					t.Fatalf("Delete(%d) = (%d, %v) vs (%d, %v)", id, n1, err1, n2, err2)
				}
			case 2: // range search
				q := rect()
				want, err1 := oracle.Search(q)
				got, err2 := dut.Search(q)
				if err1 != nil || err2 != nil || !equalIDSlices(sortedIDs(want), sortedIDs(got)) {
					t.Fatalf("Search(%v) = %v/%v vs %v/%v", q, sortedIDs(want), err1, sortedIDs(got), err2)
				}
			case 3: // vertical-line stab — the accelerator's hot path
				x := coord()
				q := segidx.Box(x, workload.DomainLo, x, workload.DomainHi)
				want, err1 := oracle.Search(q)
				got, err2 := dut.Search(q)
				if err1 != nil || err2 != nil || !equalIDSlices(sortedIDs(want), sortedIDs(got)) {
					t.Fatalf("line stab %g = %v/%v vs %v/%v", x, sortedIDs(want), err1, sortedIDs(got), err2)
				}
				if pv != nil {
					want, err1 := pv.Search(q)
					got, err2 := dv.Search(q)
					if err1 != nil || err2 != nil || !equalIDSlices(sortedIDs(want), sortedIDs(got)) {
						t.Fatalf("pinned line stab %g diverges (%v, %v)", x, err1, err2)
					}
				}
			case 4: // (re)pin the snapshot pair
				if pv != nil {
					pv.Release()
					dv.Release()
				}
				pv, dv = oracle.Snapshot(), dut.Snapshot()
			}
			if oracle.Len() != dut.Len() {
				t.Fatalf("Len diverges: %d vs %d", oracle.Len(), dut.Len())
			}
		}
		if err := dut.CheckInvariants(); err != nil {
			t.Fatalf("dut invariants: %v", err)
		}
		if err := oracle.Close(); err != nil {
			t.Fatal(err)
		}
		if err := dut.Close(); err != nil {
			t.Fatal(err)
		}
	})
}
