package segidx_test

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"segidx"
)

// The MVCC differential battery: a snapshot pinned at epoch E must keep
// answering queries exactly as the index answered them at E, no matter how
// many commits land afterwards. Every combination of index variant and
// shard count runs a randomized mutation sequence; at intervals it pins a
// snapshot AND builds a frozen mirror — a fresh single-tree index loaded
// with the live record set at that instant — then keeps both around while
// the writer continues. Every held snapshot is repeatedly compared against
// its mirror across all query families; any divergence means a writer
// commit leaked into a pinned view.

// mkVariant builds one index of the named kind (shards <= 1 for a plain
// tree).
func mkVariant(t *testing.T, kind string, shards, tuples int) *segidx.Index {
	t.Helper()
	opts := []segidx.Option{segidx.WithLeafNodeBytes(256)}
	if shards > 1 {
		opts = append(opts, segidx.WithShards(shards))
	}
	est := segidx.SkeletonEstimate{
		Tuples: tuples,
		Domain: segidx.Box(0, 0, 1000, 1000),
	}
	pred := est
	pred.PredictFraction = 0.05
	var x *segidx.Index
	var err error
	switch kind {
	case "r-tree":
		x, err = segidx.NewRTree(opts...)
	case "sr-tree":
		x, err = segidx.NewSRTree(opts...)
	case "skeleton-r-tree":
		x, err = segidx.NewSkeletonRTree(est, opts...)
	case "skeleton-sr-tree":
		x, err = segidx.NewSkeletonSRTree(pred, opts...)
	default:
		t.Fatalf("unknown kind %q", kind)
	}
	if err != nil {
		t.Fatal(err)
	}
	return x
}

// pinnedSnap pairs a live snapshot with its frozen mirror and the state
// counters captured at pin time.
type pinnedSnap struct {
	view    segidx.View
	mirror  *segidx.Index
	pinLen  int
	pinStep int
}

// freezeMirror builds a fresh single-tree index holding exactly the
// portions live at pin time.
func freezeMirror(t *testing.T, kind string, live map[segidx.RecordID][]segidx.Rect, tuples int) *segidx.Index {
	t.Helper()
	m := mkVariant(t, kind, 1, tuples)
	for id, rects := range live {
		for _, r := range rects {
			if err := m.Insert(r, id); err != nil {
				t.Fatalf("mirror insert: %v", err)
			}
		}
	}
	return m
}

// compareSnap checks one held snapshot against its mirror on a query: same
// intersection set, same containment set, same count, same streamed sets,
// and a stable Len.
func compareSnap(t *testing.T, step int, s pinnedSnap, q segidx.Rect) {
	t.Helper()
	tag := fmt.Sprintf("step %d, snapshot pinned at step %d", step, s.pinStep)

	want, err1 := s.mirror.Search(q)
	got, err2 := s.view.Search(q)
	if err1 != nil || err2 != nil {
		t.Fatalf("%s: Search errors: %v vs %v", tag, err1, err2)
	}
	if !equalIDSlices(sortedIDs(want), sortedIDs(got)) {
		t.Fatalf("%s: Search(%v) diverges: mirror %v, snapshot %v",
			tag, q, sortedIDs(want), sortedIDs(got))
	}

	wantC, err1 := s.mirror.SearchContaining(q)
	gotC, err2 := s.view.SearchContaining(q)
	if err1 != nil || err2 != nil || !equalIDSlices(sortedIDs(wantC), sortedIDs(gotC)) {
		t.Fatalf("%s: SearchContaining diverges (%v, %v): %v vs %v",
			tag, err1, err2, sortedIDs(wantC), sortedIDs(gotC))
	}

	wantN, err1 := s.mirror.Count(q)
	gotN, err2 := s.view.Count(q)
	if err1 != nil || err2 != nil || wantN != gotN {
		t.Fatalf("%s: Count(%v) = %d/%v vs %d/%v", tag, q, wantN, err1, gotN, err2)
	}

	// Stab at the query corner through the streaming paths.
	p := segidx.Point(q.Min[0], q.Min[1])
	wantS, err1 := uniqueIDs(func(fn func(segidx.Entry) bool) error {
		return s.mirror.StabFunc(fn, q.Min[0], q.Min[1])
	})
	gotS, err2 := uniqueIDs(func(fn func(segidx.Entry) bool) error {
		return s.view.SearchContainingFunc(p, fn)
	})
	if err1 != nil || err2 != nil || !equalIDSets(wantS, gotS) {
		t.Fatalf("%s: stab streams diverge (%v, %v): %d vs %d ids",
			tag, err1, err2, len(wantS), len(gotS))
	}

	wantF, err1 := uniqueIDs(func(fn func(segidx.Entry) bool) error {
		return s.mirror.SearchFunc(q, fn)
	})
	gotF, err2 := uniqueIDs(func(fn func(segidx.Entry) bool) error {
		return s.view.SearchFunc(q, fn)
	})
	if err1 != nil || err2 != nil || !equalIDSets(wantF, gotF) {
		t.Fatalf("%s: SearchFunc diverges (%v, %v)", tag, err1, err2)
	}

	if got := s.view.Len(); got != s.pinLen {
		t.Fatalf("%s: snapshot Len = %d, want pinned %d", tag, got, s.pinLen)
	}
}

func runSnapshotDifferential(t *testing.T, kind string, shards int, seed int64, nOps int) {
	dut := mkVariant(t, kind, shards, nOps/2)
	defer func() {
		if err := dut.Close(); err != nil {
			t.Fatal(err)
		}
	}()

	rng := rand.New(rand.NewSource(seed))
	live := make(map[segidx.RecordID][]segidx.Rect)
	var liveIDs []segidx.RecordID
	nextID := segidx.RecordID(1)
	var pins []pinnedSnap
	defer func() {
		for _, s := range pins {
			s.view.Release()
			if err := s.mirror.Close(); err != nil {
				t.Fatal(err)
			}
		}
	}()

	for step := 0; step < nOps; step++ {
		switch op := rng.Intn(100); {
		case op < 55: // insert, occasionally extending a live record
			var id segidx.RecordID
			if len(liveIDs) > 0 && rng.Intn(10) == 0 {
				id = liveIDs[rng.Intn(len(liveIDs))]
			} else {
				id = nextID
				nextID++
				liveIDs = append(liveIDs, id)
			}
			r := diffRect(rng)
			if err := dut.Insert(r, id); err != nil {
				t.Fatalf("step %d: Insert: %v", step, err)
			}
			live[id] = append(live[id], r)
		case op < 72: // delete a live record when one exists
			if len(liveIDs) == 0 {
				continue
			}
			i := rng.Intn(len(liveIDs))
			id := liveIDs[i]
			liveIDs = append(liveIDs[:i], liveIDs[i+1:]...)
			hint := live[id][0]
			for _, r := range live[id][1:] {
				hint = hint.Union(r)
			}
			delete(live, id)
			if _, err := dut.Delete(id, hint); err != nil {
				t.Fatalf("step %d: Delete(%d): %v", step, id, err)
			}
		default: // compare every held snapshot against its mirror
			q := diffRect(rng)
			if step%9 == 0 {
				q = segidx.Box(q.Min[0], q.Min[1], q.Min[0], q.Min[1])
			}
			for _, s := range pins {
				compareSnap(t, step, s, q)
			}
		}

		// Pin a new long-lived snapshot at a fixed cadence; the earliest
		// pins live the longest, stretching the version chains and the
		// epoch-GC horizon.
		if step%(nOps/6) == nOps/12 {
			pins = append(pins, pinnedSnap{
				view:    dut.Snapshot(),
				mirror:  freezeMirror(t, kind, live, nOps/2),
				pinLen:  dut.Len(),
				pinStep: step,
			})
		}
	}

	// Final full sweep on every snapshot, then release and verify the
	// released views fail closed.
	all := segidx.Box(0, 0, 1000, 1000)
	for _, s := range pins {
		compareSnap(t, nOps, s, all)
	}
	if err := dut.CheckInvariants(); err != nil {
		t.Fatalf("invariants after snapshots: %v", err)
	}
	for _, s := range pins {
		s.view.Release()
		if _, err := s.view.Search(all); !errors.Is(err, segidx.ErrSnapshotReleased) {
			t.Fatalf("released view Search error = %v, want ErrSnapshotReleased", err)
		}
	}
}

func TestSnapshotDifferential(t *testing.T) {
	kinds := []string{"r-tree", "sr-tree", "skeleton-r-tree", "skeleton-sr-tree"}
	shardCounts := []int{1, 4}
	nOps := 600
	if testing.Short() {
		nOps = 180
	}
	for _, kind := range kinds {
		for _, shards := range shardCounts {
			t.Run(fmt.Sprintf("%s/shards=%d", kind, shards), func(t *testing.T) {
				runSnapshotDifferential(t, kind, shards, int64(len(kind))*37+int64(shards), nOps)
			})
		}
	}
}
