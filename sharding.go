package segidx

import (
	"errors"
	"fmt"

	"segidx/internal/core"
	"segidx/internal/forest"
	"segidx/internal/skeleton"
	"segidx/internal/store"
)

// This file wires the sharded index forest (internal/forest) into the
// public facade: construction behind WithShards, manifest-sniffing reopen
// in Open/OpenDurable, sharded bulk loading, and the shard-introspection
// API. Every Index method in segidx.go works unchanged on a forest —
// *forest.Forest satisfies the engine interface — so sharding is purely a
// construction-time decision.

// shardConfig derives one shard's configuration from the resolved
// options: an explicit per-shard budget wins; otherwise a global pool
// budget is split evenly so sharding does not multiply memory.
func shardConfig(cfg core.Config, shards, budget int) core.Config {
	if budget > 0 {
		cfg.PoolBytes = budget
	} else if cfg.PoolBytes > 0 {
		per := cfg.PoolBytes / shards
		if per < 1 {
			per = 1
		}
		cfg.PoolBytes = per
	}
	return cfg
}

// buildForest constructs a fresh n-shard forest for build().
func buildForest(kind string, spanning bool, est *SkeletonEstimate, o *options) (*Index, error) {
	n := o.shards
	cfg := o.cfg
	cfg.Spanning = spanning
	if est == nil {
		cfg.CoalesceEvery = 0
	}
	scfg := shardConfig(cfg, n, o.shardBudget)
	perTuples := 0
	if est != nil {
		if est.Tuples < 1 {
			return nil, fmt.Errorf("segidx: skeleton estimate of %d tuples", est.Tuples)
		}
		// Each shard receives roughly 1/n of the input; skeleton
		// pre-construction sizes each shard for its share.
		perTuples = (est.Tuples + n - 1) / n
	}

	var mf *forest.ManifestFile
	var err error
	if o.path != "" {
		if mf, err = forest.CreateManifest(store.OS, o.path, n); err != nil {
			return nil, err
		}
	}
	shards := make([]forest.Shard, 0, n)
	fail := func(err error) (*Index, error) {
		for _, s := range shards {
			err = errors.Join(err, s.Store.Close())
		}
		if mf != nil {
			err = errors.Join(err, mf.Close())
		}
		return nil, err
	}
	for i := 0; i < n; i++ {
		st, err := o.openShardStore(i)
		if err != nil {
			return fail(err)
		}
		var eng forest.Engine
		switch {
		case est == nil:
			var t *core.Tree
			if t, err = core.New(scfg, st); err == nil {
				eng, err = t, o.attachStabAccel(t, nil)
			}
		case est.PredictFraction > 0:
			var p *skeleton.Predictor
			if p, err = skeleton.New(scfg, st, est.Domain, perTuples, est.PredictFraction); err == nil {
				if o.accelOn {
					p.SetAttach(func(t *core.Tree) error { return o.attachStabAccel(t, est) })
				}
				eng = p
			}
		default:
			var t *core.Tree
			if t, err = core.NewSkeleton(scfg, st, core.Estimate{
				Tuples: perTuples,
				Domain: est.Domain,
				Hists:  est.Histograms,
			}); err == nil {
				eng, err = t, o.attachStabAccel(t, est)
			}
		}
		if err != nil {
			return fail(errors.Join(err, st.Close()))
		}
		shards = append(shards, forest.Shard{Eng: eng, Store: st})
	}
	f, err := forest.New(shards, forest.Config{Dims: scfg.Dims, Manifest: mf})
	if err != nil {
		return fail(err)
	}
	f.SetParallelism(o.par)
	return newIndex(f, nil, kind, false, o), nil
}

// openShardStore opens shard i's page store under the forest path.
func (o *options) openShardStore(i int) (store.Store, error) {
	if o.path == "" {
		return store.NewMemStore(), nil
	}
	sp := forest.ShardPath(o.path, i)
	if o.durable {
		return store.OpenWALStore(sp)
	}
	return store.OpenFileStore(sp)
}

// openForest reassembles a persisted forest from its manifest for Open
// and OpenDurable. Each shard store is opened (replaying its WAL when
// durable), its metadata verified against the manifest — a shard whose
// durable epoch is ahead of the manifest cannot result from any crash of
// the flush protocol and is rejected as corruption — and the routing map
// and covers are rebuilt from the stored portions.
func openForest(path string, durable bool, opts []Option) (*Index, error) {
	o, err := resolve(opts)
	if err != nil {
		return nil, err
	}
	mf, m, err := forest.OpenManifest(store.OS, path)
	if err != nil {
		return nil, err
	}
	shards := make([]forest.Shard, 0, m.Shards)
	fail := func(err error) (*Index, error) {
		for _, s := range shards {
			err = errors.Join(err, s.Store.Close())
		}
		return nil, errors.Join(err, mf.Close())
	}
	o.path, o.durable = path, durable
	var spanning bool
	for i := 0; i < m.Shards; i++ {
		st, err := o.openShardStore(i)
		if err != nil {
			return fail(err)
		}
		meta, err := core.ReadMeta(st)
		if err != nil {
			return fail(errors.Join(fmt.Errorf("segidx: forest shard %d: %w", i, err), st.Close()))
		}
		if meta.Epoch > m.Epoch {
			return fail(errors.Join(fmt.Errorf(
				"segidx: forest shard %d at epoch %d, ahead of manifest epoch %d: %w",
				i, meta.Epoch, m.Epoch, store.ErrBroken), st.Close()))
		}
		if i == 0 {
			spanning = meta.Spanning
		} else if meta.Spanning != spanning {
			return fail(errors.Join(fmt.Errorf(
				"segidx: forest shard %d spanning=%v differs from shard 0", i, meta.Spanning), st.Close()))
		}
		cfg := shardConfig(o.cfg, m.Shards, o.shardBudget)
		cfg.Dims = meta.Dims
		cfg.Sizes.LeafBytes = meta.LeafBytes
		cfg.Sizes.Growth = meta.Growth
		cfg.Spanning = meta.Spanning
		t, err := core.Open(cfg, st)
		if err != nil {
			return fail(errors.Join(fmt.Errorf("segidx: forest shard %d: %w", i, err), st.Close()))
		}
		if err := o.attachStabAccel(t, nil); err != nil {
			return fail(errors.Join(err, st.Close()))
		}
		shards = append(shards, forest.Shard{Eng: t, Store: st})
	}
	dims := shards[0].Eng.(*core.Tree).Config().Dims
	f, err := forest.New(shards, forest.Config{
		Dims:     dims,
		Manifest: mf,
		Epoch:    m.Epoch,
		Rebuild:  true,
	})
	if err != nil {
		return fail(err)
	}
	f.SetParallelism(o.par)
	kind := "r-tree"
	if spanning {
		kind = "sr-tree"
	}
	return newIndex(f, nil, kind, false, o), nil
}

// bulkLoadForest partitions the records by their routed shard and packs
// each shard independently. Duplicate IDs are pinned to their first
// record's shard so a logical record never straddles shards.
func bulkLoadForest(records []BulkRecord, fill float64, o *options) (*Index, error) {
	n := o.shards
	cfg := o.cfg
	cfg.Spanning = false
	cfg.CoalesceEvery = 0
	scfg := shardConfig(cfg, n, o.shardBudget)

	parts := make([][]BulkRecord, n)
	pinned := make(map[RecordID]int, len(records))
	for _, r := range records {
		s, ok := pinned[r.ID]
		if !ok {
			s = forest.RouteRect(r.Rect, n)
			pinned[r.ID] = s
		}
		parts[s] = append(parts[s], r)
	}

	var mf *forest.ManifestFile
	var err error
	if o.path != "" {
		if mf, err = forest.CreateManifest(store.OS, o.path, n); err != nil {
			return nil, err
		}
	}
	shards := make([]forest.Shard, 0, n)
	fail := func(err error) (*Index, error) {
		for _, s := range shards {
			err = errors.Join(err, s.Store.Close())
		}
		if mf != nil {
			err = errors.Join(err, mf.Close())
		}
		return nil, err
	}
	for i := 0; i < n; i++ {
		st, err := o.openShardStore(i)
		if err != nil {
			return fail(err)
		}
		t, err := core.BulkLoad(scfg, st, parts[i], fill)
		if err == nil {
			err = o.attachStabAccel(t, nil)
		}
		if err != nil {
			return fail(errors.Join(err, st.Close()))
		}
		shards = append(shards, forest.Shard{Eng: t, Store: st})
	}
	f, err := forest.New(shards, forest.Config{Dims: scfg.Dims, Manifest: mf, Rebuild: true})
	if err != nil {
		return fail(err)
	}
	f.SetParallelism(o.par)
	return newIndex(f, nil, "packed-r-tree", false, o), nil
}

// asForest returns the underlying forest, or nil for a single-tree index.
func (x *Index) asForest() *forest.Forest {
	f, _ := x.eng.(*forest.Forest)
	return f
}

// Shards reports how many independent trees back this index (1 unless
// built with WithShards).
func (x *Index) Shards() int {
	if f := x.asForest(); f != nil {
		return f.Shards()
	}
	return 1
}

// ShardOf reports the shard an insert of r would route to by the
// rectangle-center hash. An insert reusing a live record ID instead stays
// on that ID's home shard regardless of its rectangle. Always 0 on an
// unsharded index.
func (x *Index) ShardOf(r Rect) int {
	if f := x.asForest(); f != nil {
		return f.Route(r)
	}
	return 0
}

// FlushShard persists one shard's dirty pages at the forest's current
// epoch without committing a new manifest epoch — the group-commit
// primitive for writers pinned to distinct shards. On an unsharded index,
// FlushShard(0) is Flush.
func (x *Index) FlushShard(i int) error {
	if f := x.asForest(); f != nil {
		return f.FlushShard(i)
	}
	if i != 0 {
		return fmt.Errorf("segidx: shard %d out of range [0, 1)", i)
	}
	return x.eng.Flush()
}

// ShardStats returns per-shard activity counters (one element on an
// unsharded index). (*Index).Stats is their field-wise sum.
func (x *Index) ShardStats() []Stats {
	if f := x.asForest(); f != nil {
		return f.ShardStats()
	}
	return []Stats{x.eng.Stats()}
}

// ShardPoolStats returns per-shard buffer pool counters (one element on
// an unsharded index). (*Index).PoolStats is their field-wise sum.
func (x *Index) ShardPoolStats() []PoolStats {
	if f := x.asForest(); f != nil {
		return f.ShardPoolStats()
	}
	return []PoolStats{x.eng.PoolStats()}
}

// ShardLens returns each shard's logical record count (one element on an
// unsharded index); the sum equals Len.
func (x *Index) ShardLens() []int {
	if f := x.asForest(); f != nil {
		return f.ShardLens()
	}
	return []int{x.eng.Len()}
}

// the forest is a drop-in engine.
var _ engine = (*forest.Forest)(nil)
