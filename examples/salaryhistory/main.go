// Salary history: the paper's Figure 1 scenario. Employee salary periods
// are horizontal segments in (time, salary) space — mostly short periods
// (frequent raises) with a skewed tail of very long ones (employees who
// seldom received raises). A Skeleton SR-Tree with distribution prediction
// indexes the history and answers temporal queries; the same workload on a
// plain R-Tree shows the search-cost difference the paper reports.
package main

import (
	"fmt"
	"log"

	"segidx"
	"segidx/internal/workload"
)

const (
	employees = 4000
	yearLo    = 1950.0
	yearHi    = 2000.0
	salaryLo  = 10000.0
	salaryHi  = 200000.0
)

type period struct {
	id     segidx.RecordID
	emp    int
	from   float64
	to     float64
	salary float64
}

// generateHistories produces salary step functions: each employee holds a
// salary for an exponentially distributed number of years (mean 3), then
// gets a raise. A small fraction of "stayers" keep one salary for decades,
// producing the skewed interval-length distribution of Figure 1.
func generateHistories(rng *workload.RNG) []period {
	var out []period
	id := segidx.RecordID(1)
	for emp := 0; emp < employees; emp++ {
		year := yearLo + rng.Float64()*20 // hire date
		salary := salaryLo + rng.Float64()*40000
		stayer := rng.Float64() < 0.05
		for year < yearHi {
			hold := rng.Exp(3, 40) // years at this salary
			if stayer {
				hold = 10 + rng.Float64()*40
			}
			end := year + hold
			if end > yearHi {
				end = yearHi
			}
			out = append(out, period{id, emp, year, end, salary})
			id++
			year = end
			salary *= 1.05 + rng.Float64()*0.15 // the raise
			if salary > salaryHi {
				salary = salaryHi
			}
		}
	}
	return out
}

func buildIndex(name string, mk func() (*segidx.Index, error), periods []period) *segidx.Index {
	idx, err := mk()
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range periods {
		if err := idx.Insert(segidx.Interval(p.from, p.to, p.salary), p.id); err != nil {
			log.Fatal(err)
		}
	}
	rep, err := idx.Analyze()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-17s %d periods, height %d, %d nodes, %d spanning records\n",
		name, idx.Len(), rep.Height, rep.Nodes, rep.SpanningRecords)
	return idx
}

func main() {
	rng := workload.NewRNG(1965)
	periods := generateHistories(rng)
	fmt.Printf("generated %d salary periods for %d employees\n\n", len(periods), employees)

	domain := segidx.Box(yearLo, 0, yearHi, salaryHi)
	est := segidx.SkeletonEstimate{
		Tuples:          len(periods),
		Domain:          domain,
		PredictFraction: 0.05,
	}
	rtree := buildIndex("R-Tree", func() (*segidx.Index, error) { return segidx.NewRTree() }, periods)
	defer rtree.Close()
	sksr := buildIndex("Skeleton SR-Tree", func() (*segidx.Index, error) { return segidx.NewSkeletonSRTree(est) }, periods)
	defer sksr.Close()

	byID := make(map[segidx.RecordID]period, len(periods))
	for _, p := range periods {
		byID[p.id] = p
	}

	// Query 1: who earned between 50k and 60k during 1975?
	q1 := segidx.Box(1975, 50000, 1976, 60000)
	res, err := sksr.Search(q1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nemployees earning 50k-60k during 1975: %d periods, e.g.:\n", len(res))
	for i, e := range res {
		if i == 3 {
			fmt.Println("  ...")
			break
		}
		p := byID[e.ID]
		fmt.Printf("  employee %d: %.0f-%.0f at $%.0f\n", p.emp, p.from, p.to, p.salary)
	}

	// Query 2 (the paper's VQAR shape): a full-salary-range snapshot at
	// one instant — "everyone's salary on 1980-01-01". Compare search
	// cost across the two indexes.
	snapshot := segidx.Box(1980, 0, 1980, salaryHi)
	cost := func(idx *segidx.Index) (int, float64) {
		before := idx.Stats()
		n, err := idx.Count(snapshot)
		if err != nil {
			log.Fatal(err)
		}
		after := idx.Stats()
		return n, float64(after.SearchNodeAccesses - before.SearchNodeAccesses)
	}
	nR, cR := cost(rtree)
	nS, cS := cost(sksr)
	if nR != nS {
		log.Fatalf("indexes disagree: %d vs %d", nR, nS)
	}
	fmt.Printf("\nsnapshot query (all salaries active in 1980): %d periods\n", nS)
	fmt.Printf("  R-Tree accessed %.0f nodes, Skeleton SR-Tree accessed %.0f (%.1fx)\n",
		cR, cS, cR/cS)

	// Query 3: one employee's full history via a point-in-time walk.
	emp := byID[res[0].ID].emp
	var history []period
	err = sksr.SearchFunc(segidx.Box(yearLo, 0, yearHi, salaryHi), func(e segidx.Entry) bool {
		if p := byID[e.ID]; p.emp == emp {
			history = append(history, p)
		}
		return true
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsalary history of employee %d (%d periods)\n", emp, len(history))
}
