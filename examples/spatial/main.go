// Spatial: rectangle data with a skewed size distribution — a synthetic
// city map whose features range from small buildings to a few very large
// parks and districts (the paper's R2 shape). A Skeleton SR-Tree stores
// the large features as spanning records in non-leaf nodes, and the index
// file is persisted and reopened.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"segidx"
	"segidx/internal/workload"
)

const (
	cityLo   = 0.0
	cityHi   = 50000.0
	features = 30000
)

type feature struct {
	id   segidx.RecordID
	kind string
	rect segidx.Rect
}

func generateCity(rng *workload.RNG) []feature {
	var out []feature
	id := segidx.RecordID(1)
	add := func(kind string, w, h float64) {
		cx := rng.Float64() * cityHi
		cy := rng.Float64() * cityHi
		out = append(out, feature{id, kind, segidx.Box(
			clampCity(cx-w/2), clampCity(cy-h/2), clampCity(cx+w/2), clampCity(cy+h/2))})
		id++
	}
	for len(out) < features {
		switch r := rng.Float64(); {
		case r < 0.90: // buildings: small
			add("building", 10+rng.Float64()*40, 10+rng.Float64()*40)
		case r < 0.97: // blocks: medium
			add("block", 100+rng.Float64()*300, 100+rng.Float64()*300)
		case r < 0.995: // parks: large
			add("park", rng.Exp(1500, cityHi), rng.Exp(1500, cityHi))
		default: // districts: huge
			add("district", 5000+rng.Exp(4000, cityHi/2), 5000+rng.Exp(4000, cityHi/2))
		}
	}
	return out
}

func clampCity(v float64) float64 {
	if v < cityLo {
		return cityLo
	}
	if v > cityHi {
		return cityHi
	}
	return v
}

func main() {
	rng := workload.NewRNG(7)
	city := generateCity(rng)
	byID := make(map[segidx.RecordID]feature, len(city))
	for _, f := range city {
		byID[f.id] = f
	}

	dir, err := os.MkdirTemp("", "segidx-spatial")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "city.db")

	// Build a persistent SR-Tree. (Skeleton types also persist; plain
	// types can be reopened with segidx.Open, which restores the
	// structural config from the file.)
	idx, err := segidx.NewSRTree(segidx.WithFile(path))
	if err != nil {
		log.Fatal(err)
	}
	for _, f := range city {
		if err := idx.Insert(f.rect, f.id); err != nil {
			log.Fatal(err)
		}
	}
	rep, err := idx.Analyze()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d features: height %d, %d nodes, %d spanning records\n",
		idx.Len(), rep.Height, rep.Nodes, rep.SpanningRecords)
	if err := idx.Close(); err != nil {
		log.Fatal(err)
	}

	// Reopen from disk and query.
	idx, err = segidx.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer idx.Close()
	fmt.Printf("reopened %s from %s (%d records)\n\n", idx.Kind(), filepath.Base(path), idx.Len())

	// Window query: what is in this map viewport?
	viewport := segidx.Box(20000, 20000, 22000, 21500)
	counts := map[string]int{}
	err = idx.SearchFunc(viewport, func(e segidx.Entry) bool {
		counts[byID[e.ID].kind]++
		return true
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("viewport %v contains:\n", viewport)
	for _, kind := range []string{"building", "block", "park", "district"} {
		fmt.Printf("  %-9s %d\n", kind, counts[kind])
	}

	// Point query: every feature covering one location.
	here := segidx.Point(25000, 25000)
	res, err := idx.Search(here)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfeatures covering %v:\n", here)
	for _, e := range res {
		f := byID[e.ID]
		fmt.Printf("  %s %d (%.0f x %.0f)\n", f.kind, f.id, f.rect.Length(0), f.rect.Length(1))
	}
}
