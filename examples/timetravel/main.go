// Time travel: a versioned key-value store in the style of the POSTGRES
// storage system the paper's historical-data motivation comes from
// ([STON86], [STON87]). Every version of a key is an interval in the time
// dimension crossed with the key's hash point; "what was the value of K at
// time T" and "show K's history" are index queries. Version lifetimes are
// heavily skewed — hot keys are overwritten constantly, cold keys live for
// ages — which is precisely the interval-length distribution segment
// indexes are built for.
package main

import (
	"fmt"
	"hash/fnv"
	"log"

	"segidx"
	"segidx/internal/workload"
)

// horizon stands in for "still current" in the time dimension.
const horizon = 1 << 40

type version struct {
	key      string
	value    string
	from, to float64 // [from, to); to == horizon while current
}

// Store is a tiny time-travel KV store over a segment index.
type Store struct {
	idx      *segidx.Index
	versions map[segidx.RecordID]*version
	current  map[string]segidx.RecordID
	nextID   segidx.RecordID
}

func NewStore() (*Store, error) {
	idx, err := segidx.NewSRTree()
	if err != nil {
		return nil, err
	}
	return &Store{
		idx:      idx,
		versions: make(map[segidx.RecordID]*version),
		current:  make(map[string]segidx.RecordID),
		nextID:   1,
	}, nil
}

func keyPoint(key string) float64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return float64(h.Sum64() % (1 << 30))
}

func (s *Store) rect(v *version) segidx.Rect {
	return segidx.Interval(v.from, v.to, keyPoint(v.key))
}

// Put writes a value for key at time now, closing any current version.
func (s *Store) Put(key, value string, now float64) error {
	if err := s.closeCurrent(key, now); err != nil {
		return err
	}
	id := s.nextID
	s.nextID++
	v := &version{key: key, value: value, from: now, to: horizon}
	if err := s.idx.Insert(s.rect(v), id); err != nil {
		return err
	}
	s.versions[id] = v
	s.current[key] = id
	return nil
}

// Delete removes key at time now (its history remains queryable).
func (s *Store) Delete(key string, now float64) error {
	return s.closeCurrent(key, now)
}

// closeCurrent truncates the current version's interval to end at now.
func (s *Store) closeCurrent(key string, now float64) error {
	id, ok := s.current[key]
	if !ok {
		return nil
	}
	v := s.versions[id]
	// Re-index the version with its final lifetime.
	if _, err := s.idx.Delete(id, s.rect(v)); err != nil {
		return err
	}
	v.to = now
	if err := s.idx.Insert(s.rect(v), id); err != nil {
		return err
	}
	delete(s.current, key)
	return nil
}

// Get returns the value of key as of the given time.
func (s *Store) Get(key string, asOf float64) (string, bool, error) {
	entries, err := s.idx.Stab(asOf, keyPoint(key))
	if err != nil {
		return "", false, err
	}
	for _, e := range entries {
		v := s.versions[e.ID]
		// Hash collisions and interval closedness: verify key and
		// half-open [from, to).
		if v.key == key && asOf >= v.from && asOf < v.to {
			return v.value, true, nil
		}
	}
	return "", false, nil
}

// History returns every version of key in creation order.
func (s *Store) History(key string) ([]*version, error) {
	p := keyPoint(key)
	entries, err := s.idx.Search(segidx.Interval(0, horizon, p))
	if err != nil {
		return nil, err
	}
	var out []*version
	for _, e := range entries {
		if v := s.versions[e.ID]; v.key == key {
			out = append(out, v)
		}
	}
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			if out[j].from < out[i].from {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return out, nil
}

func main() {
	s, err := NewStore()
	if err != nil {
		log.Fatal(err)
	}
	defer s.idx.Close()

	// A workload with skewed version lifetimes: one hot config key
	// rewritten constantly, many warm keys, a few cold constants.
	rng := workload.NewRNG(2024)
	now := 1000.0
	s.Put("schema-version", "v1", now) // cold: written once
	for i := 0; i < 2000; i++ {
		now += rng.Exp(1, 100)
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4, 5: // hot key
			s.Put("leader", fmt.Sprintf("node-%d", rng.Intn(5)), now)
		default:
			s.Put(fmt.Sprintf("shard-%d", rng.Intn(50)), fmt.Sprintf("gen-%d", i), now)
		}
	}
	end := now

	rep, err := s.idx.Analyze()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("store holds %d versions of %d live keys (index height %d, %d spanning records)\n\n",
		len(s.versions), len(s.current), rep.Height, rep.SpanningRecords)

	// Time travel: the leader at three instants.
	for _, f := range []float64{0.25, 0.5, 0.9} {
		at := 1000 + (end-1000)*f
		val, ok, err := s.Get("leader", at)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("leader as of t=%.0f: %q (found=%v)\n", at, val, ok)
	}
	// The cold key is still version 1 at any time.
	val, ok, _ := s.Get("schema-version", end)
	fmt.Printf("schema-version now: %q (found=%v)\n", val, ok)

	hist, err := s.History("leader")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nleader changed %d times; first three reigns:\n", len(hist))
	for i, v := range hist {
		if i == 3 {
			break
		}
		fmt.Printf("  [%8.1f, %8.1f) %s\n", v.from, v.to, v.value)
	}
}
