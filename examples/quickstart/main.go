// Quickstart: build an SR-Tree, insert interval and point records, run
// range and stabbing queries, and inspect the structure.
package main

import (
	"fmt"
	"log"

	"segidx"
)

func main() {
	// An SR-Tree indexes K-dimensional rectangles; intervals and points
	// are degenerate rectangles. Dimension 0 is "time", dimension 1 is
	// "value" in this example.
	idx, err := segidx.NewSRTree()
	if err != nil {
		log.Fatal(err)
	}
	defer idx.Close()

	// Interval(lo, hi, at) is an interval in dimension 0 at a point in
	// dimension 1 — the paper's "time range data".
	records := []struct {
		id   segidx.RecordID
		rect segidx.Rect
		desc string
	}{
		{1, segidx.Interval(1980, 1985, 30000), "salary 30k, 1980-1985"},
		{2, segidx.Interval(1985, 1990, 42000), "salary 42k, 1985-1990"},
		{3, segidx.Interval(1990, 1999, 55000), "salary 55k, 1990-1999"},
		{4, segidx.Interval(1975, 1999, 28000), "salary 28k, 1975-1999 (one long interval)"},
		{5, segidx.Point(1988, 60000), "one-off bonus event in 1988"},
		{6, segidx.Box(1982, 35000, 1992, 45000), "a genuine 2-D box"},
	}
	for _, r := range records {
		if err := idx.Insert(r.rect, r.id); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("indexed %d records (height %d, %d nodes)\n\n", idx.Len(), idx.Height(), idx.NodeCount())

	// Range query: everything overlapping 1986-1989 with value 25k-65k.
	query := segidx.Box(1986, 25000, 1989, 65000)
	results, err := idx.Search(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("records overlapping %v:\n", query)
	for _, e := range results {
		fmt.Printf("  id=%d rect=%v\n", e.ID, e.Rect)
	}

	// Stabbing query: which intervals contain the instant (1983, 30000)?
	stab := segidx.Point(1983, 30000)
	n, err := idx.Count(stab)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d record(s) contain the point %v\n", n, stab)

	// Delete one record and show it is gone.
	if _, err := idx.Delete(2, segidx.Interval(1985, 1990, 42000)); err != nil {
		log.Fatal(err)
	}
	n, err = idx.Count(segidx.Box(1980, 0, 1999, 100000))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter deleting record 2: %d records remain\n", n)

	// The structural report shows where records live (spanning records
	// appear once long intervals migrate to non-leaf nodes).
	rep, err := idx.Analyze()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstructure:\n%s", rep.String())
}
