// Rule locks: the paper's Section 2.2 motivation. A rule system triggers
// on attribute predicates that are either intervals ("salary > 10k and
// salary <= 20k") or exact values ("salary = 100k"). The rulelock package
// stores each predicate's range in a 1-dimensional segment index, making
// "which rules does this value trigger?" a stabbing query with interval
// and point predicates coexisting in one index — the paper's third
// motivating goal.
//
// The paper manages rule locks via index stub records, escalating a lock
// to a parent node when it spans everything beneath it; here the SR-Tree's
// spanning-record machinery performs that escalation, and the example
// prints which predicates ended up held in non-leaf nodes.
package main

import (
	"fmt"
	"log"
	"math"

	"segidx/internal/workload"
	"segidx/rulelock"
)

func main() {
	m, err := rulelock.NewManager()
	if err != nil {
		log.Fatal(err)
	}
	defer m.Close()

	reg := func(lo, hi float64, action string) rulelock.RuleID {
		id, err := m.Register(lo, hi, action)
		if err != nil {
			log.Fatal(err)
		}
		return id
	}

	// The paper's two example rules plus a broader rule book.
	reg(10_000, 20_000, `office_type := "office has at least 1 window"`)
	reg(100_000, 100_000, `office_type := "office has at least 4 windows"`)
	reg(0, 15_000, "flag for salary review")
	reg(50_000, math.MaxFloat64/4, "include in bonus pool")
	reg(42_000, 42_000, "audit: legacy pay grade")
	reg(20_000, 80_000, "standard withholding table")
	logAll := reg(0, math.MaxFloat64/4, "log every salary change")

	// Which rules fire for a given salary? A stabbing query.
	for _, salary := range []float64{12_000, 42_000, 100_000, 250_000} {
		rules, err := m.Triggered(salary)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("salary $%.0f triggers %d rule(s):\n", salary, len(rules))
		for _, r := range rules {
			fmt.Printf("  rule %d: %s\n", r.ID, r.Action)
		}
		fmt.Println()
	}

	// Which rules could fire for any salary in a band?
	rules, err := m.TriggeredRange(90_000, 110_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("salaries in [90k, 110k] can trigger %d rule(s)\n", len(rules))
	// Which rules fire for EVERY salary in the band?
	rules, err = m.Covering(90_000, 110_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rules covering the whole band: %d\n\n", len(rules))

	// Dropping a rule removes its lock range.
	if err := m.Drop(logAll); err != nil {
		log.Fatal(err)
	}
	n, err := m.Triggered(12_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after dropping the log-everything rule, $12000 triggers %d rule(s)\n\n", len(n))

	// Scale up with many narrow rules and watch wide predicates escalate
	// to non-leaf nodes (the paper's lock escalation).
	rng := workload.NewRNG(11)
	for i := 0; i < 3000; i++ {
		lo := rng.Float64() * 190_000
		reg(lo, lo+rng.Float64()*300, "narrow departmental rule")
	}
	wide := reg(0, 200_000, "global compliance audit")
	esc, err := m.Escalated()
	if err != nil {
		log.Fatal(err)
	}
	byLevel := map[int]int{}
	wideLevel := -1
	for _, e := range esc {
		byLevel[e.Level]++
		if e.Rule.ID == wide {
			wideLevel = e.Level
		}
	}
	fmt.Printf("with %d rules installed, predicates by index level: %v\n", m.Len(), byLevel)
	fmt.Printf("the global audit predicate is held at level %d (escalated above the leaves)\n", wideLevel)
}
