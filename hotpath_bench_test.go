package segidx_test

// Hot read path micro-benchmarks. These measure allocation and latency of
// the query path on a fully resident tree (the default pool is unbounded,
// so after the warm-up sweep every page is cached and no I/O or decode
// happens inside the timed loop).
//
// The CI bench smoke job runs these with -benchtime=1x -race; the gated
// view APIs (SearchFunc, StabFunc, Count) must report 0 allocs/op — see
// cmd/segbench -hotpath for the JSON trajectory (BENCH_hotpath.json).

import (
	"testing"

	"segidx"
	"segidx/internal/harness"
	"segidx/internal/workload"
)

// hotpathQueries returns the fixed query mix used by every hot-path
// benchmark: unit-aspect windows over the I3 interval workload.
func hotpathQueries(spec harness.Spec) []segidx.Rect {
	return workload.Queries(1, 64, spec.Seed)
}

// warmResident runs every query once so each reachable page is decoded and
// cached before the timed loop (the pool is unbounded by default).
func warmResident(b testing.TB, idx *segidx.Index, queries []segidx.Rect) {
	b.Helper()
	for _, q := range queries {
		if err := idx.SearchFunc(q, func(segidx.Entry) bool { return true }); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSearchFunc measures the streaming query API on a resident tree
// for all four index variants. Gated at 0 allocs/op.
func BenchmarkSearchFunc(b *testing.B) {
	for _, kind := range harness.AllKinds() {
		kind := kind
		b.Run(kind.String(), func(b *testing.B) {
			spec := harness.NewSpec("hotpath", workload.I3, benchTuples())
			idx := buildFor(b, spec, kind)
			defer idx.Close()
			queries := hotpathQueries(spec)
			warmResident(b, idx, queries)
			var hits int
			fn := func(e segidx.Entry) bool { hits++; return true }
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := idx.SearchFunc(queries[i%len(queries)], fn); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if hits == 0 {
				b.Fatal("no hits: benchmark not exercising the match path")
			}
		})
	}
}

// BenchmarkSearchArena measures the materializing Search API (result slice
// returned to the caller) on a resident tree for all four variants.
func BenchmarkSearchArena(b *testing.B) {
	for _, kind := range harness.AllKinds() {
		kind := kind
		b.Run(kind.String(), func(b *testing.B) {
			spec := harness.NewSpec("hotpath", workload.I3, benchTuples())
			idx := buildFor(b, spec, kind)
			defer idx.Close()
			queries := hotpathQueries(spec)
			warmResident(b, idx, queries)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := idx.Search(queries[i%len(queries)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCount measures match counting on a resident tree. Gated at
// 0 allocs/op.
func BenchmarkCount(b *testing.B) {
	for _, kind := range harness.AllKinds() {
		kind := kind
		b.Run(kind.String(), func(b *testing.B) {
			spec := harness.NewSpec("hotpath", workload.I3, benchTuples())
			idx := buildFor(b, spec, kind)
			defer idx.Close()
			queries := hotpathQueries(spec)
			warmResident(b, idx, queries)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := idx.Count(queries[i%len(queries)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// stabPoints returns points lying on records of the spec's dataset (the
// interval workloads place segments at exact Y values, so uniform random
// points would stab nothing).
func stabPoints(spec harness.Spec, n int) [][]float64 {
	records := spec.Dataset.Generate(spec.Tuples, spec.Seed)
	step := len(records) / n
	if step < 1 {
		step = 1
	}
	var points [][]float64
	for i := 0; i < len(records) && len(points) < n; i += step {
		r := records[i]
		points = append(points, []float64{(r.Min[0] + r.Max[0]) / 2, r.Min[1]})
	}
	return points
}

// BenchmarkStabFunc measures the streaming stabbing API on a resident tree
// for all four index variants. Gated at 0 allocs/op.
func BenchmarkStabFunc(b *testing.B) {
	for _, kind := range harness.AllKinds() {
		kind := kind
		b.Run(kind.String(), func(b *testing.B) {
			spec := harness.NewSpec("hotpath", workload.I3, benchTuples())
			idx := buildFor(b, spec, kind)
			defer idx.Close()
			points := stabPoints(spec, 256)
			var hits int
			fn := func(e segidx.Entry) bool { hits++; return true }
			// Pre-built coordinate slices passed through with p... — a
			// literal StabFunc(fn, x, y) call allocates the variadic
			// slice at the call site.
			for _, p := range points {
				if err := idx.StabFunc(fn, p...); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := idx.StabFunc(fn, points[i%len(points)]...); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if hits == 0 {
				b.Fatal("no hits: benchmark not exercising the match path")
			}
		})
	}
}

// BenchmarkStabHot measures materializing stabbing queries (covering
// portions are unioned per record and returned) on a resident SR-Tree.
func BenchmarkStabHot(b *testing.B) {
	spec := harness.NewSpec("hotpath", workload.I3, benchTuples())
	idx := buildFor(b, spec, harness.KindSRTree)
	defer idx.Close()
	points := stabPoints(spec, 256)
	for _, p := range points {
		if _, err := idx.Stab(p[0], p[1]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := points[i%len(points)]
		if _, err := idx.Stab(p[0], p[1]); err != nil {
			b.Fatal(err)
		}
	}
}
