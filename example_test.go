package segidx_test

import (
	"fmt"
	"log"
	"sort"

	"segidx"
)

// Example indexes a small salary history and runs the three query styles:
// range intersection, stabbing, and containment.
func Example() {
	idx, err := segidx.NewSRTree()
	if err != nil {
		log.Fatal(err)
	}
	defer idx.Close()

	// Interval(lo, hi, at): an interval in dimension 0 at a point value
	// in dimension 1 — the paper's historical-data shape.
	idx.Insert(segidx.Interval(1980, 1985, 30000), 1)
	idx.Insert(segidx.Interval(1985, 1990, 42000), 2)
	idx.Insert(segidx.Interval(1975, 1999, 28000), 3) // one long interval

	overlapping, _ := idx.Search(segidx.Box(1984, 0, 1986, 50000))
	ids := make([]int, 0, len(overlapping))
	for _, e := range overlapping {
		ids = append(ids, int(e.ID))
	}
	sort.Ints(ids)
	fmt.Println("overlapping 1984-1986:", ids)

	stabbed, _ := idx.Stab(1987, 42000)
	fmt.Println("active at (1987, 42k):", len(stabbed))
	// Output:
	// overlapping 1984-1986: [1 2 3]
	// active at (1987, 42k): 1
}

// ExampleNewSkeletonSRTree shows distribution prediction: the index
// buffers the first 5% of the expected input, computes per-dimension
// histograms, and pre-partitions the domain before indexing the rest.
func ExampleNewSkeletonSRTree() {
	idx, err := segidx.NewSkeletonSRTree(segidx.SkeletonEstimate{
		Tuples:          10_000,
		Domain:          segidx.Box(0, 0, 100_000, 100_000),
		PredictFraction: 0.05,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer idx.Close()

	for i := 0; i < 10_000; i++ {
		x := float64(i*37%100_000) + 1
		y := float64(i*91%100_000) + 1
		if err := idx.Insert(segidx.Interval(x-1, x+1, y), segidx.RecordID(i+1)); err != nil {
			log.Fatal(err)
		}
	}
	n, _ := idx.Count(segidx.Box(0, 0, 100_000, 100_000))
	fmt.Println("indexed:", n)
	// Output:
	// indexed: 10000
}

// ExampleBulkLoadRTree packs a complete dataset bottom-up (the static
// construction the paper contrasts skeleton indexes with).
func ExampleBulkLoadRTree() {
	recs := make([]segidx.BulkRecord, 1000)
	for i := range recs {
		x, y := float64(i%100)*10, float64(i/100)*100
		recs[i] = segidx.BulkRecord{
			Rect: segidx.Box(x, y, x+5, y+5),
			ID:   segidx.RecordID(i + 1),
		}
	}
	idx, err := segidx.BulkLoadRTree(recs, 1.0)
	if err != nil {
		log.Fatal(err)
	}
	defer idx.Close()
	n, _ := idx.Count(segidx.Box(0, 0, 500, 500))
	fmt.Println("in window:", n)
	// Output:
	// in window: 306
}

// ExampleIndex_SearchContaining finds the intervals that fully cover a
// query range.
func ExampleIndex_SearchContaining() {
	idx, err := segidx.NewSRTree(segidx.WithDims(1))
	if err != nil {
		log.Fatal(err)
	}
	defer idx.Close()
	short, _ := segidx.NewRect([]float64{40}, []float64{60})
	long, _ := segidx.NewRect([]float64{0}, []float64{100})
	idx.Insert(short, 1)
	idx.Insert(long, 2)

	q, _ := segidx.NewRect([]float64{30}, []float64{70})
	covering, _ := idx.SearchContaining(q)
	fmt.Println("covering [30,70]:", len(covering), "record(s), id", covering[0].ID)
	// Output:
	// covering [30,70]: 1 record(s), id 2
}
