package segidx_test

// Benchmarks regenerating the paper's evaluation (one per graph, plus
// ablations and operation micro-benchmarks). Each graph benchmark builds
// the four index types over the graph's dataset outside the timer, then
// measures searches across the paper's QAR sweep, reporting the paper's
// metric as "nodes/search".
//
// The dataset size defaults to 20,000 tuples so `go test -bench=.` stays
// minutes-scale; set SEGIDX_BENCH_TUPLES=200000 to run at the paper's
// scale (cmd/segbench runs the full experiment with per-QAR breakdowns).

import (
	"context"
	"fmt"
	"os"
	"strconv"
	"sync/atomic"
	"testing"

	"segidx"
	"segidx/internal/harness"
	"segidx/internal/workload"
)

func benchTuples() int {
	if s := os.Getenv("SEGIDX_BENCH_TUPLES"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return 20000
}

// newFor constructs one empty index of the given kind for a spec.
func newFor(b testing.TB, spec harness.Spec, kind harness.Kind) *segidx.Index {
	b.Helper()
	opts := []segidx.Option{
		segidx.WithLeafNodeBytes(spec.LeafBytes),
		segidx.WithNodeGrowth(spec.Growth),
		segidx.WithBranchReserve(spec.BranchReserve),
		segidx.WithCoalescing(spec.CoalesceEvery, spec.CoalesceCandidates),
	}
	est := segidx.SkeletonEstimate{
		Tuples:          spec.Tuples,
		Domain:          segidx.Box(workload.DomainLo, workload.DomainLo, workload.DomainHi, workload.DomainHi),
		PredictFraction: float64(spec.PredictSample) / float64(spec.Tuples),
	}
	var (
		idx *segidx.Index
		err error
	)
	switch kind {
	case harness.KindRTree:
		idx, err = segidx.NewRTree(opts...)
	case harness.KindSRTree:
		idx, err = segidx.NewSRTree(opts...)
	case harness.KindSkeletonRTree:
		idx, err = segidx.NewSkeletonRTree(est, opts...)
	case harness.KindSkeletonSRTree:
		idx, err = segidx.NewSkeletonSRTree(est, opts...)
	}
	if err != nil {
		b.Fatal(err)
	}
	return idx
}

// buildFor constructs and loads one index type for a spec.
func buildFor(b testing.TB, spec harness.Spec, kind harness.Kind) *segidx.Index {
	b.Helper()
	idx := newFor(b, spec, kind)
	for i, r := range spec.Dataset.Generate(spec.Tuples, spec.Seed) {
		if err := idx.Insert(r, segidx.RecordID(i+1)); err != nil {
			b.Fatal(err)
		}
	}
	return idx
}

// benchGraph measures the QAR search sweep for every index type on one of
// the paper's graphs.
func benchGraph(b *testing.B, graph int) {
	spec, err := harness.GraphSpec(graph, benchTuples())
	if err != nil {
		b.Fatal(err)
	}
	for _, kind := range harness.AllKinds() {
		kind := kind
		b.Run(kind.String(), func(b *testing.B) {
			idx := buildFor(b, spec, kind)
			defer idx.Close()
			// Pre-generate the paper's query mix: the full QAR sweep.
			var queries []segidx.Rect
			for _, qar := range spec.QARs {
				queries = append(queries, workload.Queries(qar, 20, spec.Seed)...)
			}
			before := idx.Stats()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := idx.Search(queries[i%len(queries)]); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			after := idx.Stats()
			searches := after.Searches - before.Searches
			if searches > 0 {
				b.ReportMetric(float64(after.SearchNodeAccesses-before.SearchNodeAccesses)/float64(searches), "nodes/search")
			}
		})
	}
}

func BenchmarkGraph1(b *testing.B) { benchGraph(b, 1) } // I1: uniform Y, uniform lengths
func BenchmarkGraph2(b *testing.B) { benchGraph(b, 2) } // I2: exp Y, uniform lengths
func BenchmarkGraph3(b *testing.B) { benchGraph(b, 3) } // I3: uniform Y, exp lengths
func BenchmarkGraph4(b *testing.B) { benchGraph(b, 4) } // I4: exp Y, exp lengths
func BenchmarkGraph5(b *testing.B) { benchGraph(b, 5) } // R1: uniform rectangles
func BenchmarkGraph6(b *testing.B) { benchGraph(b, 6) } // R2: exp-size rectangles
func BenchmarkGraph7(b *testing.B) { benchGraph(b, 7) } // RE1 (omitted in paper)
func BenchmarkGraph8(b *testing.B) { benchGraph(b, 8) } // RE2 (omitted in paper)

// BenchmarkInsert measures insertion throughput per index type on the
// skewed interval workload (I3).
func BenchmarkInsert(b *testing.B) {
	for _, kind := range harness.AllKinds() {
		kind := kind
		b.Run(kind.String(), func(b *testing.B) {
			spec := harness.NewSpec("insert", workload.I3, b.N+1)
			data := spec.Dataset.Generate(b.N, spec.Seed)
			idx := newFor(b, spec, kind)
			defer idx.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := idx.Insert(data[i], segidx.RecordID(i+1)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationReserve measures the VQAR search cost of the SR-Tree at
// the three branch-reserve fractions Section 4 mentions (A1).
func BenchmarkAblationReserve(b *testing.B) {
	for _, reserve := range []float64{0.5, 2.0 / 3.0, 0.75} {
		reserve := reserve
		b.Run(fmt.Sprintf("reserve=%.2f", reserve), func(b *testing.B) {
			spec := harness.NewSpec("A1", workload.I3, benchTuples())
			spec.BranchReserve = reserve
			idx := buildFor(b, spec, harness.KindSkeletonSRTree)
			defer idx.Close()
			queries := workload.Queries(0.001, 50, spec.Seed)
			before := idx.Stats()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := idx.Search(queries[i%len(queries)]); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			after := idx.Stats()
			if n := after.Searches - before.Searches; n > 0 {
				b.ReportMetric(float64(after.SearchNodeAccesses-before.SearchNodeAccesses)/float64(n), "nodes/search")
			}
		})
	}
}

// BenchmarkAblationNodeSize compares doubling node sizes (tactic 2) with
// fixed-size nodes (A2).
func BenchmarkAblationNodeSize(b *testing.B) {
	for _, growth := range []int{2, 1} {
		growth := growth
		b.Run(fmt.Sprintf("growth=%d", growth), func(b *testing.B) {
			spec := harness.NewSpec("A2", workload.I3, benchTuples())
			spec.Growth = growth
			idx := buildFor(b, spec, harness.KindSkeletonSRTree)
			defer idx.Close()
			queries := workload.Queries(0.001, 50, spec.Seed)
			before := idx.Stats()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := idx.Search(queries[i%len(queries)]); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			after := idx.Stats()
			if n := after.Searches - before.Searches; n > 0 {
				b.ReportMetric(float64(after.SearchNodeAccesses-before.SearchNodeAccesses)/float64(n), "nodes/search")
			}
		})
	}
}

// BenchmarkSearch measures single-query latency per index type on I3 with
// a unit-aspect query.
func BenchmarkSearch(b *testing.B) {
	for _, kind := range harness.AllKinds() {
		kind := kind
		b.Run(kind.String(), func(b *testing.B) {
			spec := harness.NewSpec("search", workload.I3, benchTuples())
			idx := buildFor(b, spec, kind)
			defer idx.Close()
			queries := workload.Queries(1, 64, spec.Seed)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := idx.Search(queries[i%len(queries)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSearchParallel measures concurrent search throughput per index
// type on I3 with b.RunParallel; compare the per-op time against
// BenchmarkSearch at the same -cpu to get the read scale-up factor
// (EXPERIMENTS.md records the numbers).
func BenchmarkSearchParallel(b *testing.B) {
	for _, kind := range harness.AllKinds() {
		kind := kind
		b.Run(kind.String(), func(b *testing.B) {
			spec := harness.NewSpec("search-parallel", workload.I3, benchTuples())
			idx := buildFor(b, spec, kind)
			defer idx.Close()
			queries := workload.Queries(1, 64, spec.Seed)
			var goroutines atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				// Stagger each goroutine's starting query so concurrent
				// workers do not walk the same tree path in lockstep.
				i := int(goroutines.Add(1)) * 17
				for pb.Next() {
					if _, err := idx.Search(queries[i%len(queries)]); err != nil {
						b.Error(err)
						return
					}
					i++
				}
			})
		})
	}
}

// BenchmarkSearchBatch measures SearchBatch throughput (the whole QAR mix
// as one batch) at the worker bound given by -cpu.
func BenchmarkSearchBatch(b *testing.B) {
	spec := harness.NewSpec("search-batch", workload.I3, benchTuples())
	idx := buildFor(b, spec, harness.KindSRTree)
	defer idx.Close()
	queries := workload.Queries(1, 256, spec.Seed)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := idx.SearchBatch(context.Background(), queries); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(queries)), "queries/op")
}

// BenchmarkStab measures stabbing-query latency on the SR-Tree.
func BenchmarkStab(b *testing.B) {
	spec := harness.NewSpec("stab", workload.I3, benchTuples())
	idx := buildFor(b, spec, harness.KindSRTree)
	defer idx.Close()
	rng := workload.NewRNG(12)
	points := make([][2]float64, 256)
	for i := range points {
		points[i] = [2]float64{rng.Uniform(0, workload.DomainHi), rng.Uniform(0, workload.DomainHi)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := points[i%len(points)]
		if _, err := idx.Stab(p[0], p[1]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDelete measures deletion on a pre-built SR-Tree (records are
// re-inserted after deletion to keep the tree size stable across b.N).
func BenchmarkDelete(b *testing.B) {
	spec := harness.NewSpec("delete", workload.I3, benchTuples())
	idx := buildFor(b, spec, harness.KindSRTree)
	defer idx.Close()
	data := spec.Dataset.Generate(spec.Tuples, spec.Seed)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % len(data)
		id := segidx.RecordID(j + 1)
		n, err := idx.Delete(id, data[j])
		if err != nil {
			b.Fatal(err)
		}
		if n != 1 {
			b.Fatalf("delete %d removed %d", id, n)
		}
		b.StopTimer()
		if err := idx.Insert(data[j], id); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

// BenchmarkBulkLoad measures packed construction throughput.
func BenchmarkBulkLoad(b *testing.B) {
	data := workload.R1.Generate(benchTuples(), 99)
	recs := make([]segidx.BulkRecord, len(data))
	for i, r := range data {
		recs[i] = segidx.BulkRecord{Rect: r, ID: segidx.RecordID(i + 1)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx, err := segidx.BulkLoadRTree(recs, 1.0)
		if err != nil {
			b.Fatal(err)
		}
		idx.Close()
	}
	b.ReportMetric(float64(len(recs)), "records/op")
}
