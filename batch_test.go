package segidx_test

import (
	"context"
	"errors"
	"reflect"
	"sort"
	"testing"

	"segidx"
	"segidx/internal/workload"
)

// batchQueries returns a deterministic query mix spanning the paper's
// vertical, square, and horizontal aspect ratios.
func batchQueries() []segidx.Rect {
	queries := workload.Queries(1, 40, 55)
	queries = append(queries, workload.Queries(0.01, 40, 56)...)
	queries = append(queries, workload.Queries(100, 40, 57)...)
	return queries
}

// TestSearchBatchMatchesSequential is the batch/sequential equivalence
// property: on a static index, SearchBatch at parallelism 8 must return
// element-wise exactly what a sequential Search loop returns (same
// entries, same order — the tree is not mutated, so the traversal order
// is deterministic). Runs against all four index types.
func TestSearchBatchMatchesSequential(t *testing.T) {
	const n = 2500
	data := workload.I3.Generate(n, 4321)
	queries := batchQueries()

	for name, mk := range constructors(n) {
		t.Run(name, func(t *testing.T) {
			idx, err := mk()
			if err != nil {
				t.Fatal(err)
			}
			defer idx.Close()
			for i, r := range data {
				if err := idx.Insert(r, segidx.RecordID(i+1)); err != nil {
					t.Fatal(err)
				}
			}
			want := make([][]segidx.Entry, len(queries))
			for i, q := range queries {
				out, err := idx.Search(q)
				if err != nil {
					t.Fatal(err)
				}
				want[i] = out
			}
			idx.SetParallelism(8)
			got, err := idx.SearchBatch(context.Background(), queries)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("SearchBatch returned %d results, want %d", len(got), len(want))
			}
			for i := range want {
				if !reflect.DeepEqual(got[i], want[i]) {
					t.Fatalf("query %d: batch result diverged from sequential Search\n got: %v\nwant: %v",
						i, got[i], want[i])
				}
			}
		})
	}
}

// TestStabBatchMatchesSequential checks the same property for stabbing
// queries.
func TestStabBatchMatchesSequential(t *testing.T) {
	const n = 2000
	data := workload.I3.Generate(n, 99)
	idx, err := segidx.NewSRTree()
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	for i, r := range data {
		if err := idx.Insert(r, segidx.RecordID(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	rng := workload.NewRNG(7)
	points := make([][]float64, 200)
	for i := range points {
		points[i] = []float64{rng.Uniform(0, workload.DomainHi), rng.Uniform(0, workload.DomainHi)}
	}
	want := make([][]segidx.Entry, len(points))
	for i, p := range points {
		out, err := idx.Stab(p[0], p[1])
		if err != nil {
			t.Fatal(err)
		}
		want[i] = out
	}
	idx.SetParallelism(8)
	got, err := idx.StabBatch(context.Background(), points)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("point %d: batch stab diverged from sequential Stab", i)
		}
	}
}

// TestInsertBatchBuildsEquivalentIndex loads the same records through
// InsertBatch (parallelism 8) and through a sequential Insert loop, then
// checks the batch-built index holds the same record set: equal Len,
// valid invariants, and identical ID sets for every query (entry order
// may differ because the tree shapes differ with insertion order).
func TestInsertBatchBuildsEquivalentIndex(t *testing.T) {
	const n = 2500
	data := workload.I3.Generate(n, 777)
	recs := make([]segidx.BulkRecord, n)
	for i, r := range data {
		recs[i] = segidx.BulkRecord{Rect: r, ID: segidx.RecordID(i + 1)}
	}
	queries := batchQueries()

	for name, mk := range constructors(n) {
		t.Run(name, func(t *testing.T) {
			seq, err := mk()
			if err != nil {
				t.Fatal(err)
			}
			defer seq.Close()
			for _, rec := range recs {
				if err := seq.Insert(rec.Rect, rec.ID); err != nil {
					t.Fatal(err)
				}
			}
			par, err := mk()
			if err != nil {
				t.Fatal(err)
			}
			defer par.Close()
			par.SetParallelism(8)
			if err := par.InsertBatch(context.Background(), recs); err != nil {
				t.Fatal(err)
			}
			if par.Len() != seq.Len() {
				t.Fatalf("Len = %d, want %d", par.Len(), seq.Len())
			}
			if err := par.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			for qi, q := range queries {
				a, err := seq.Search(q)
				if err != nil {
					t.Fatal(err)
				}
				b, err := par.Search(q)
				if err != nil {
					t.Fatal(err)
				}
				if !sameIDSet(a, b) {
					t.Fatalf("query %d: batch-built index returned %d records, sequential %d",
						qi, len(b), len(a))
				}
			}
		})
	}
}

func sameIDSet(a, b []segidx.Entry) bool {
	if len(a) != len(b) {
		return false
	}
	ai := make([]segidx.RecordID, len(a))
	bi := make([]segidx.RecordID, len(b))
	for i := range a {
		ai[i], bi[i] = a[i].ID, b[i].ID
	}
	sort.Slice(ai, func(x, y int) bool { return ai[x] < ai[y] })
	sort.Slice(bi, func(x, y int) bool { return bi[x] < bi[y] })
	for i := range ai {
		if ai[i] != bi[i] {
			return false
		}
	}
	return true
}

// TestSearchBatchCancellation verifies a canceled context aborts the
// batch with ctx.Err() on both the sequential and the worker-pool path.
func TestSearchBatchCancellation(t *testing.T) {
	idx, err := segidx.NewRTree()
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	for i, r := range workload.I3.Generate(500, 3) {
		if err := idx.Insert(r, segidx.RecordID(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	queries := workload.Queries(1, 64, 5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, par := range []int{1, 8} {
		idx.SetParallelism(par)
		res, err := idx.SearchBatch(ctx, queries)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("parallelism %d: err = %v, want context.Canceled", par, err)
		}
		if res != nil {
			t.Fatalf("parallelism %d: partial results returned on error", par)
		}
		if err := idx.InsertBatch(ctx, nil); err != nil {
			t.Fatalf("empty batch with canceled ctx: %v", err)
		}
	}
}

// TestBatchParallelismKnob covers the parallelism accessors and the
// empty-batch and option paths.
func TestBatchParallelismKnob(t *testing.T) {
	idx, err := segidx.NewRTree(segidx.WithParallelism(3))
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	if got := idx.Parallelism(); got != 3 {
		t.Fatalf("Parallelism = %d, want 3 (from option)", got)
	}
	idx.SetParallelism(0)
	if got := idx.Parallelism(); got < 1 {
		t.Fatalf("default Parallelism = %d, want >= 1", got)
	}
	idx.SetParallelism(-5) // negative clamps to the default
	if got := idx.Parallelism(); got < 1 {
		t.Fatalf("Parallelism after negative set = %d, want >= 1", got)
	}
	// Empty and nil-context batches are no-ops.
	res, err := idx.SearchBatch(nil, nil)
	if err != nil || len(res) != 0 {
		t.Fatalf("empty SearchBatch = %v, %v", res, err)
	}
	if err := idx.InsertBatch(nil, []segidx.BulkRecord{{Rect: segidx.Box(1, 1, 2, 2), ID: 1}}); err != nil {
		t.Fatal(err)
	}
	if idx.Len() != 1 {
		t.Fatalf("Len = %d after 1-record batch", idx.Len())
	}
	if _, err := segidx.NewRTree(segidx.WithParallelism(-1)); err == nil {
		t.Fatal("WithParallelism(-1) accepted")
	}
}
